package obs

import (
	"sort"
	"sync"
	"time"
)

// Stage is one phase of an update transaction's lifecycle, in execution
// order. The stages mirror the paper's latency-breakdown categories
// (Figure 7) extended with the asynchronous tail: WAL publication and the
// replicas' refresh application.
type Stage int

const (
	// StageRoute is the selector's routing decision, excluding any
	// remastering wait.
	StageRoute Stage = iota
	// StageRemaster is the release/grant RPC wait, zero when the write set
	// was already single-sited.
	StageRemaster
	// StageExecute is the stored procedure (begin + logic, including
	// session-freshness waits and modelled CPU).
	StageExecute
	// StageCommit is the local commit critical section, excluding the
	// update-log append.
	StageCommit
	// StageWALPublish is the update-log append (redo + propagation
	// publish).
	StageWALPublish
	// StageRefreshApply is the asynchronous tail: time from log publish
	// until a replica applied the transaction as a refresh transaction
	// (the slowest replica observed so far).
	StageRefreshApply

	NumStages
)

// stageNames holds the label values used in metrics and trace JSON.
var stageNames = [NumStages]string{
	"route", "remaster", "execute", "commit", "wal_publish", "refresh_apply",
}

// String names the stage.
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists all lifecycle stages in order.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Trace is one update transaction's recorded lifecycle.
type Trace struct {
	// ID is assigned by the tracer, dense from 1.
	ID uint64
	// Client is the session/client id.
	Client int
	// Site is the execution site.
	Site int
	// Seq is the transaction's commit sequence number at Site; (Site, Seq)
	// is the commit stamp replicas key refresh application on.
	Seq uint64
	// Remastered reports whether routing required mastership transfers.
	Remastered bool
	// PartsMoved is the number of partitions transferred.
	PartsMoved int
	// Start is the submission time.
	Start time.Time
	// Stages holds the per-stage durations.
	Stages [NumStages]time.Duration
	// Total is the client-observed latency (includes network time not
	// attributed to any stage).
	Total time.Duration
}

// StageMap renders the stage durations keyed by stage name.
func (t Trace) StageMap() map[string]time.Duration {
	out := make(map[string]time.Duration, NumStages)
	for i, d := range t.Stages {
		out[Stage(i).String()] = d
	}
	return out
}

// Tracer keeps a bounded in-memory ring of recent transaction traces for
// slow-query inspection, with late completion of the asynchronous
// refresh-apply stage. A nil *Tracer no-ops.
type Tracer struct {
	mu      sync.Mutex
	ring    []Trace
	have    int // traces currently in the ring
	next    int // next write slot
	seq     uint64
	byStamp map[traceStamp]int // commit stamp -> ring slot, for refresh completion
}

type traceStamp struct {
	site int
	seq  uint64
}

// DefaultTraceRing is the default ring capacity.
const DefaultTraceRing = 256

// NewTracer returns a tracer retaining the last capacity traces
// (capacity <= 0 selects DefaultTraceRing).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceRing
	}
	return &Tracer{
		ring:    make([]Trace, capacity),
		byStamp: make(map[traceStamp]int, capacity),
	}
}

// Record inserts a completed (up to WAL publish) trace, assigns its ID, and
// returns it. The oldest trace is evicted when the ring is full.
func (t *Tracer) Record(tr Trace) Trace {
	if t == nil {
		return tr
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	tr.ID = t.seq
	slot := t.next
	if old := t.ring[slot]; old.ID != 0 {
		// Drop the evicted trace's stamp entry — but only if it still points
		// here. A commit stamp can recur (a recovered site restarts its
		// sequence), in which case the entry was re-pointed at a newer slot;
		// deleting it would strand that slot's refresh-apply completion and
		// let the index grow past the ring under stamp churn.
		st := traceStamp{old.Site, old.Seq}
		if cur, ok := t.byStamp[st]; ok && cur == slot {
			delete(t.byStamp, st)
		}
	}
	t.ring[slot] = tr
	if tr.Seq != 0 {
		t.byStamp[traceStamp{tr.Site, tr.Seq}] = slot
	}
	t.next = (t.next + 1) % len(t.ring)
	if t.have < len(t.ring) {
		t.have++
	}
	return tr
}

// RefreshApplied completes the refresh-apply stage of the trace committed
// at (site, seq), if it is still in the ring: the stage records the slowest
// replica apply observed so far.
func (t *Tracer) RefreshApplied(site int, seq uint64, lag time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, ok := t.byStamp[traceStamp{site, seq}]
	if !ok {
		return
	}
	if lag > t.ring[slot].Stages[StageRefreshApply] {
		t.ring[slot].Stages[StageRefreshApply] = lag
	}
}

// Count returns the number of traces recorded so far (lifetime, not ring
// occupancy).
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Recent returns up to n traces, newest first (n <= 0 means the whole
// ring).
func (t *Tracer) Recent(n int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.have {
		n = t.have
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		slot := ((t.next-1-i)%len(t.ring) + len(t.ring)) % len(t.ring)
		out = append(out, t.ring[slot])
	}
	return out
}

// Slowest returns up to n retained traces ordered by total latency,
// slowest first.
func (t *Tracer) Slowest(n int) []Trace {
	all := t.Recent(0)
	sort.Slice(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	if n > 0 && n < len(all) {
		all = all[:n]
	}
	return all
}
