package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: an always-on, process-global, fixed-size ring of
// structured operational events — the black box a chaos-run postmortem
// reads instead of scraping logs. Writers are lock-free (one atomic add,
// one atomic pointer store), so protocol hot paths can record events
// unconditionally; readers assemble a consistent-enough snapshot by
// collecting the ring and sorting by sequence number. The ring is global
// rather than per-cluster because the events it captures (RPC retries,
// injected faults, WAL truncations) originate in layers that have no
// cluster handle.

// FlightEvent is one recorded operational event.
type FlightEvent struct {
	// Seq is the process-lifetime sequence number, dense from 1.
	Seq uint64 `json:"seq"`
	// At is the wall-clock time of the event.
	At time.Time `json:"at"`
	// Kind is the event taxonomy entry (Flight* constants).
	Kind string `json:"kind"`
	// Site is the site the event concerns; SelectorSite for process- or
	// control-plane-level events.
	Site int `json:"site"`
	// Msg is the human-readable detail line.
	Msg string `json:"msg"`
}

// The event taxonomy. Every kind is pre-registered in the
// dynamast_flightrec_events_total metric family.
const (
	// FlightRemaster marks a mastership transfer chain (release+grant).
	FlightRemaster = "remaster"
	// FlightFailover marks a completed site failover.
	FlightFailover = "failover"
	// FlightFaultInject marks an injected drop/error fault reaching a caller.
	FlightFaultInject = "fault_inject"
	// FlightRPCRetry marks an RPC attempt being retried.
	FlightRPCRetry = "rpc_retry"
	// FlightWALTruncate marks a WAL prefix truncation.
	FlightWALTruncate = "wal_truncate"
	// FlightSLOBreach marks a windowed SLO threshold breach.
	FlightSLOBreach = "slo_breach"
	// FlightRecovery marks a completed crash recovery.
	FlightRecovery = "recovery"
	// FlightLeaderChange marks a selector leadership change (lease expiry
	// promotion of a standby, or the initial acquisition).
	FlightLeaderChange = "leader_change"
	// FlightPlacement marks a replica-set change (replica add or drop) under
	// partial replication.
	FlightPlacement = "placement"
)

// flightKinds lists the taxonomy for metric pre-registration.
var flightKinds = []string{
	FlightRemaster, FlightFailover, FlightFaultInject, FlightRPCRetry,
	FlightWALTruncate, FlightSLOBreach, FlightRecovery, FlightLeaderChange,
	FlightPlacement,
}

// flightRingSize is the retained-event capacity. 4096 events outlast any
// chaos run's interesting tail while staying ~a few hundred KB.
const flightRingSize = 4096

// flight is the process-global recorder state.
var flight struct {
	ring [flightRingSize]atomic.Pointer[FlightEvent]
	next atomic.Uint64

	kindMu sync.Mutex
	kinds  map[string]*atomic.Uint64

	dirMu sync.Mutex
	dir   string

	snapshots atomic.Uint64
}

func init() {
	flight.kinds = make(map[string]*atomic.Uint64, len(flightKinds))
	for _, k := range flightKinds {
		flight.kinds[k] = new(atomic.Uint64)
	}
}

// flightKindCounter returns the lifetime counter for kind, creating one for
// kinds outside the fixed taxonomy.
func flightKindCounter(kind string) *atomic.Uint64 {
	flight.kindMu.Lock()
	defer flight.kindMu.Unlock()
	c := flight.kinds[kind]
	if c == nil {
		c = new(atomic.Uint64)
		flight.kinds[kind] = c
	}
	return c
}

// RecordEvent appends one event to the flight ring. Safe for concurrent
// use from any goroutine; never blocks beyond the Sprintf.
func RecordEvent(kind string, site int, format string, args ...any) {
	ev := &FlightEvent{
		At:   time.Now(),
		Kind: kind,
		Site: site,
		Msg:  fmt.Sprintf(format, args...),
	}
	ev.Seq = flight.next.Add(1)
	flight.ring[(ev.Seq-1)%flightRingSize].Store(ev)
	flightKindCounter(kind).Add(1)
}

// FlightEvents returns the retained events, oldest first. Concurrent
// writers may overwrite slots mid-collection; the per-event pointers keep
// every returned event internally consistent.
func FlightEvents() []FlightEvent {
	out := make([]FlightEvent, 0, flightRingSize)
	for i := range flight.ring {
		if ev := flight.ring[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FlightEventCount returns the lifetime event count.
func FlightEventCount() uint64 { return flight.next.Load() }

// SetFlightDir enables disk snapshots (SnapshotFlight) under dir, creating
// it if needed. An empty dir disables snapshots.
func SetFlightDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	flight.dirMu.Lock()
	flight.dir = dir
	flight.dirMu.Unlock()
	return nil
}

// FlightDir returns the configured snapshot directory ("" = disabled).
func FlightDir() string {
	flight.dirMu.Lock()
	defer flight.dirMu.Unlock()
	return flight.dir
}

// flightSnapshot is the on-disk snapshot schema.
type flightSnapshot struct {
	Reason string        `json:"reason"`
	At     time.Time     `json:"at"`
	Events []FlightEvent `json:"events"`
}

// SnapshotFlight dumps the current ring to a JSON file in the configured
// snapshot directory, named flight-<n>-<reason>.json. It returns the path
// written, or ("", nil) when no directory is configured — callers invoke it
// unconditionally on failover/recovery/panic.
func SnapshotFlight(reason string) (string, error) {
	dir := FlightDir()
	if dir == "" {
		return "", nil
	}
	n := flight.snapshots.Add(1)
	path := filepath.Join(dir, fmt.Sprintf("flight-%d-%s.json", n, reason))
	data, err := json.MarshalIndent(flightSnapshot{
		Reason: reason,
		At:     time.Now(),
		Events: FlightEvents(),
	}, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// InstrumentFlight registers the dynamast_flightrec_* metrics in reg:
// the lifetime event count, the per-kind breakdown over the fixed
// taxonomy, and the snapshot count.
func InstrumentFlight(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Help("dynamast_flightrec_events_total", "Flight-recorder events recorded, by event kind.")
	reg.Help("dynamast_flightrec_snapshots_total", "Flight-recorder disk snapshots written.")
	for _, k := range flightKinds {
		c := flightKindCounter(k)
		reg.Func("dynamast_flightrec_events_total", KindCounter,
			func() float64 { return float64(c.Load()) }, L("kind", k))
	}
	reg.Func("dynamast_flightrec_snapshots_total", KindCounter,
		func() float64 { return float64(flight.snapshots.Load()) })
}
