package obs

import (
	"runtime"
	"sync"
	"time"
)

// Go runtime telemetry: goroutine count, heap occupancy and GC pause
// distribution exported as dynamast_go_* instruments. ReadMemStats
// stops-the-world, so one collector caches the stats with a short
// staleness window shared by every gauge — a metrics scrape costs at most
// one ReadMemStats regardless of how many runtime series it renders.

// goStatsStaleness bounds how old the cached MemStats may be when served.
const goStatsStaleness = 100 * time.Millisecond

// goCollector caches runtime.MemStats and drains the GC pause ring into a
// histogram as generations complete.
type goCollector struct {
	mu     sync.Mutex
	at     time.Time
	ms     runtime.MemStats
	lastGC uint32
	pause  *Histogram
}

// stat refreshes the cache if stale and returns f applied to it, all under
// the collector lock so readers never see a torn MemStats.
func (c *goCollector) stat(f func(*runtime.MemStats) float64) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.at) >= goStatsStaleness {
		runtime.ReadMemStats(&c.ms)
		c.at = time.Now()
		// Drain pauses of GC generations finished since the last refresh.
		// The runtime keeps the last 256 pauses; skip any overwritten ones.
		n := c.ms.NumGC
		start := c.lastGC
		if n-start > uint32(len(c.ms.PauseNs)) {
			start = n - uint32(len(c.ms.PauseNs))
		}
		for g := start; g < n; g++ {
			c.pause.Observe(float64(c.ms.PauseNs[g%uint32(len(c.ms.PauseNs))]) / 1e9)
		}
		c.lastGC = n
	}
	return f(&c.ms)
}

// RegisterGoRuntime registers the dynamast_go_* runtime instruments in reg.
// Safe to call more than once per registry (collectors are replaced).
func RegisterGoRuntime(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Help("dynamast_go_goroutines", "Live goroutines in the process.")
	reg.Help("dynamast_go_heap_bytes", "Heap bytes in use (runtime HeapAlloc).")
	reg.Help("dynamast_go_heap_objects", "Live heap objects.")
	reg.Help("dynamast_go_gc_total", "Completed GC cycles.")
	reg.Help("dynamast_go_gc_pause_seconds", "Stop-the-world GC pause durations.")
	c := &goCollector{pause: reg.Histogram("dynamast_go_gc_pause_seconds")}
	// Seed lastGC so historical pauses from before registration are not
	// re-observed on the first scrape.
	c.mu.Lock()
	runtime.ReadMemStats(&c.ms)
	c.lastGC = c.ms.NumGC
	c.at = time.Now()
	c.mu.Unlock()
	reg.Func("dynamast_go_goroutines", KindGauge,
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.Func("dynamast_go_heap_bytes", KindGauge,
		func() float64 { return c.stat(func(ms *runtime.MemStats) float64 { return float64(ms.HeapAlloc) }) })
	reg.Func("dynamast_go_heap_objects", KindGauge,
		func() float64 { return c.stat(func(ms *runtime.MemStats) float64 { return float64(ms.HeapObjects) }) })
	reg.Func("dynamast_go_gc_total", KindCounter,
		func() float64 { return c.stat(func(ms *runtime.MemStats) float64 { return float64(ms.NumGC) }) })
}
