package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Cross-site distributed tracing. The in-process Tracer (trace.go) stamps a
// transaction's lifecycle as six fixed stages; it cannot follow a trace
// across an RPC boundary or attribute time to the individual release/grant
// legs of a remaster chain. The span layer fixes that: a SpanContext —
// 64-bit trace id plus 64-bit span id — travels inside the binary RPC frame
// (one reserved flags bit; zero bytes when unsampled) and through the
// selector → site → replica call path, and every participant records timed
// Spans against the shared trace id. The result is one span tree per
// sampled transaction with cross-site causal edges: route with its release
// (source site) and grant (destination site) children, execute, commit with
// its WAL-flush child, and one refresh-apply span per replica that applied
// the update.

// SpanContext identifies a position in a distributed trace: the trace it
// belongs to and the span the current operation should record (or parent
// its children on). The zero value means "not sampled" and costs nothing
// anywhere it flows.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Sampled reports whether the context carries a live trace.
func (sc SpanContext) Sampled() bool { return sc.Trace != 0 }

// Child returns a context in the same trace with a fresh span id.
func (sc SpanContext) Child() SpanContext {
	if !sc.Sampled() {
		return SpanContext{}
	}
	return SpanContext{Trace: sc.Trace, Span: NewSpanID()}
}

// Span is one timed operation inside a trace.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64 // 0 = root of the tree
	Name   string // route, release, grant, execute, commit, wal_flush, refresh_apply, txn
	Site   int    // executing site; SelectorSite for the selector/client side
	Start  time.Time
	Dur    time.Duration
}

// SelectorSite is the Site value of spans recorded on the selector/client
// side rather than at a data site.
const SelectorSite = -1

// idState drives process-wide trace/span id generation: splitmix64 over an
// atomic counter, seeded once from the wall clock so ids from distinct
// processes do not collide in practice.
var idState struct {
	seed uint64
	ctr  atomic.Uint64
}

func init() {
	idState.seed = uint64(time.Now().UnixNano())
}

// newID returns a non-zero 64-bit id.
func newID() uint64 {
	for {
		z := idState.seed + idState.ctr.Add(1)*0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		if z ^= z >> 31; z != 0 {
			return z
		}
	}
}

// NewSpanID returns a fresh span id.
func NewSpanID() uint64 { return newID() }

// NewTraceContext starts a new sampled trace: fresh trace id, fresh root
// span id. The caller (or whoever it hands the context to) is responsible
// for recording the root span.
func NewTraceContext() SpanContext {
	return SpanContext{Trace: newID(), Span: newID()}
}

// Sampler makes the 1-in-N head sampling decision for locally originated
// transactions. A nil *Sampler never samples, so the unsampled fast path is
// one nil check.
type Sampler struct {
	every uint64
	ctr   atomic.Uint64
}

// NewSampler samples one in every `every` decisions (every <= 0 disables
// sampling and returns nil).
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{every: uint64(every)}
}

// Sample reports whether this decision is sampled.
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.ctr.Add(1)%s.every == 0
}

// maxSpansPerTrace caps one trace's span list so a pathological transaction
// (or a stamp collision feeding endless refresh-apply spans) cannot grow a
// slot without bound; overflow is counted, not stored.
const maxSpansPerTrace = 256

// spanStamp keys a commit stamp (origin site, commit sequence) to the
// commit span refresh-apply spans should parent on.
type spanStamp struct {
	site int
	seq  uint64
}

// stampRef records which ring slot (and which trace occupying it) a stamp
// belongs to, so eviction can drop exactly its own entries — the same
// slot-reuse hazard the Tracer's byStamp index has.
type stampRef struct {
	slot  int
	trace uint64
	span  uint64 // the commit span id refresh-apply spans attach under
}

// traceSlot is one retained trace.
type traceSlot struct {
	trace  uint64
	spans  []Span
	stamps []spanStamp // stamps registered against this slot, dropped on eviction
}

// SpanRecorder retains the spans of the most recent sampled traces in a
// bounded ring. All methods are safe for concurrent use; a nil
// *SpanRecorder no-ops.
type SpanRecorder struct {
	mu      sync.Mutex
	slots   []traceSlot
	next    int
	have    int
	byTrace map[uint64]int
	byStamp map[spanStamp]stampRef

	traces  atomic.Uint64 // lifetime traces started
	spans   atomic.Uint64 // lifetime spans recorded
	dropped atomic.Uint64 // spans dropped by the per-trace cap
}

// DefaultSpanTraces is the default number of retained traces.
const DefaultSpanTraces = 256

// NewSpanRecorder returns a recorder retaining the last capacity traces
// (capacity <= 0 selects DefaultSpanTraces).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity <= 0 {
		capacity = DefaultSpanTraces
	}
	return &SpanRecorder{
		slots:   make([]traceSlot, capacity),
		byTrace: make(map[uint64]int, capacity),
		byStamp: make(map[spanStamp]stampRef, capacity),
	}
}

// slotFor returns the slot index holding trace, allocating (and evicting
// the oldest trace) on first sight. Caller holds r.mu.
func (r *SpanRecorder) slotFor(trace uint64) int {
	if slot, ok := r.byTrace[trace]; ok {
		return slot
	}
	slot := r.next
	old := &r.slots[slot]
	if old.trace != 0 {
		// Evict: drop the index entries that still belong to this slot's
		// current occupant. A guard on both slot and trace id prevents
		// deleting an entry that a newer trace (or a reused stamp) now owns.
		if cur, ok := r.byTrace[old.trace]; ok && cur == slot {
			delete(r.byTrace, old.trace)
		}
		for _, st := range old.stamps {
			if ref, ok := r.byStamp[st]; ok && ref.slot == slot && ref.trace == old.trace {
				delete(r.byStamp, st)
			}
		}
	}
	*old = traceSlot{trace: trace, spans: old.spans[:0], stamps: old.stamps[:0]}
	r.byTrace[trace] = slot
	r.next = (r.next + 1) % len(r.slots)
	if r.have < len(r.slots) {
		r.have++
	}
	r.traces.Add(1)
	return slot
}

// Record adds one completed span to its trace, retaining the trace if it is
// new. Spans with a zero trace id are ignored (unsampled paths call
// unconditionally).
func (r *SpanRecorder) Record(sp Span) {
	if r == nil || sp.Trace == 0 {
		return
	}
	if sp.ID == 0 {
		sp.ID = newID()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := r.slotFor(sp.Trace)
	s := &r.slots[slot]
	if len(s.spans) >= maxSpansPerTrace {
		r.dropped.Add(1)
		return
	}
	s.spans = append(s.spans, sp)
	r.spans.Add(1)
}

// RegisterStamp associates a commit stamp (origin site, commit sequence)
// with the commit span in sc, so the asynchronous refresh-apply completions
// keyed by that stamp can attach to the right parent.
func (r *SpanRecorder) RegisterStamp(site int, seq uint64, sc SpanContext) {
	if r == nil || !sc.Sampled() || seq == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	slot := r.slotFor(sc.Trace)
	st := spanStamp{site, seq}
	r.byStamp[st] = stampRef{slot: slot, trace: sc.Trace, span: sc.Span}
	r.slots[slot].stamps = append(r.slots[slot].stamps, st)
}

// RefreshApplied records a refresh-apply span at the applying site for the
// transaction committed at (origin, seq), if that trace is still retained.
// The span covers [now-lag, now]: the time from commit publication until
// the replica applied the refresh transaction.
func (r *SpanRecorder) RefreshApplied(origin int, seq uint64, site int, lag time.Duration, now time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ref, ok := r.byStamp[spanStamp{origin, seq}]
	if !ok || r.slots[ref.slot].trace != ref.trace {
		return
	}
	s := &r.slots[ref.slot]
	if len(s.spans) >= maxSpansPerTrace {
		r.dropped.Add(1)
		return
	}
	s.spans = append(s.spans, Span{
		Trace:  ref.trace,
		ID:     newID(),
		Parent: ref.span,
		Name:   "refresh_apply",
		Site:   site,
		Start:  now.Add(-lag),
		Dur:    lag,
	})
	r.spans.Add(1)
}

// Spans returns a copy of the retained spans of trace (nil if the trace is
// unknown or evicted).
func (r *SpanRecorder) Spans(trace uint64) []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.byTrace[trace]
	if !ok {
		return nil
	}
	return append([]Span(nil), r.slots[slot].spans...)
}

// TraceSummary is one retained trace's headline: id, span count, the root
// span's name and window.
type TraceSummary struct {
	Trace uint64
	Spans int
	Root  string
	Start time.Time
	Dur   time.Duration
}

// Summaries returns up to n retained traces, newest first (n <= 0 means
// all).
func (r *SpanRecorder) Summaries(n int) []TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.have {
		n = r.have
	}
	out := make([]TraceSummary, 0, n)
	for i := 0; i < n; i++ {
		slot := ((r.next-1-i)%len(r.slots) + len(r.slots)) % len(r.slots)
		s := &r.slots[slot]
		if s.trace == 0 {
			continue
		}
		sum := TraceSummary{Trace: s.trace, Spans: len(s.spans)}
		for j := range s.spans {
			sp := &s.spans[j]
			if sp.Parent == 0 && sum.Root == "" {
				sum.Root = sp.Name
				sum.Dur = sp.Dur
			}
			if sum.Start.IsZero() || sp.Start.Before(sum.Start) {
				sum.Start = sp.Start
			}
		}
		out = append(out, sum)
	}
	return out
}

// Counts returns the lifetime (traces, spans, dropped spans) counters.
func (r *SpanRecorder) Counts() (traces, spans, dropped uint64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.traces.Load(), r.spans.Load(), r.dropped.Load()
}

// Instrument registers the dynamast_trace_* counters in reg.
func (r *SpanRecorder) Instrument(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	reg.Help("dynamast_trace_traces_total", "Sampled distributed traces started (lifetime).")
	reg.Help("dynamast_trace_spans_total", "Spans recorded across all sampled traces (lifetime).")
	reg.Help("dynamast_trace_spans_dropped_total", "Spans dropped by the per-trace span cap.")
	reg.Func("dynamast_trace_traces_total", KindCounter, func() float64 { return float64(r.traces.Load()) })
	reg.Func("dynamast_trace_spans_total", KindCounter, func() float64 { return float64(r.spans.Load()) })
	reg.Func("dynamast_trace_spans_dropped_total", KindCounter, func() float64 { return float64(r.dropped.Load()) })
}
