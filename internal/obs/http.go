package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the observability endpoints over HTTP:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/traces   JSON dump of recent transaction traces
//	                (?n=50 limits, ?sort=slow orders by total latency)
//
// dynamastd mounts it behind the -metrics-listen flag.
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		n, _ := strconv.Atoi(req.URL.Query().Get("n"))
		var traces []Trace
		if req.URL.Query().Get("sort") == "slow" {
			traces = t.Slowest(n)
		} else {
			traces = t.Recent(n)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TracesJSON(traces))
	})
	return mux
}

// TraceJSON is the wire form of a Trace: stage durations keyed by name, in
// nanoseconds, plus rounded human-readable totals.
type TraceJSON struct {
	ID         uint64           `json:"id"`
	Client     int              `json:"client"`
	Site       int              `json:"site"`
	Seq        uint64           `json:"seq"`
	Remastered bool             `json:"remastered"`
	PartsMoved int              `json:"parts_moved"`
	Start      time.Time        `json:"start"`
	TotalNS    int64            `json:"total_ns"`
	Total      string           `json:"total"`
	Stages     map[string]int64 `json:"stages_ns"`
}

// TracesJSON converts traces to their wire form.
func TracesJSON(traces []Trace) []TraceJSON {
	out := make([]TraceJSON, len(traces))
	for i, tr := range traces {
		stages := make(map[string]int64, NumStages)
		for s, d := range tr.Stages {
			stages[Stage(s).String()] = int64(d)
		}
		out[i] = TraceJSON{
			ID:         tr.ID,
			Client:     tr.Client,
			Site:       tr.Site,
			Seq:        tr.Seq,
			Remastered: tr.Remastered,
			PartsMoved: tr.PartsMoved,
			Start:      tr.Start,
			TotalNS:    int64(tr.Total),
			Total:      tr.Total.Round(time.Microsecond).String(),
			Stages:     stages,
		}
	}
	return out
}
