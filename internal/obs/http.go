package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler serves the observability endpoints over HTTP:
//
//	/metrics               Prometheus text exposition of the registry
//	/debug/traces          JSON dump of recent transaction traces
//	                       (?n=50 limits, ?slowest=50 or ?sort=slow orders
//	                       by total latency)
//	/debug/spans           distributed-trace span trees: without parameters
//	                       a summary of retained traces (?n= limits), with
//	                       ?trace=<hex id> the full span list of one trace
//	/debug/flightrecorder  the process flight-recorder ring as JSON
//
// dynamastd mounts it behind the -metrics-listen flag. The Tracer and
// SpanRecorder may be nil (the endpoints serve empty lists).
func Handler(r *Registry, t *Tracer, sr *SpanRecorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		n, ok := intParam(w, q.Get("n"), "n")
		if !ok {
			return
		}
		var traces []Trace
		if s := q.Get("slowest"); s != "" {
			sn, ok := intParam(w, s, "slowest")
			if !ok {
				return
			}
			if sn > 0 {
				n = sn
			}
			traces = t.Slowest(n)
		} else if q.Get("sort") == "slow" {
			traces = t.Slowest(n)
		} else {
			traces = t.Recent(n)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(TracesJSON(traces))
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		if id := q.Get("trace"); id != "" {
			trace, err := strconv.ParseUint(id, 16, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad trace id %q: want hex", id), http.StatusBadRequest)
				return
			}
			spans := sr.Spans(trace)
			if spans == nil {
				http.Error(w, fmt.Sprintf("trace %s not retained", id), http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(SpansJSON(spans))
			return
		}
		n, ok := intParam(w, q.Get("n"), "n")
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(SummariesJSON(sr.Summaries(n)))
	})
	mux.HandleFunc("/debug/flightrecorder", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(FlightEvents())
	})
	return mux
}

// intParam parses an optional non-negative integer query parameter,
// answering 400 (and returning ok=false) on malformed input. An empty
// value is 0 — "no limit" for the list endpoints.
func intParam(w http.ResponseWriter, val, name string) (int, bool) {
	if val == "" {
		return 0, true
	}
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		http.Error(w, fmt.Sprintf("bad parameter %s=%q: want a non-negative integer", name, val), http.StatusBadRequest)
		return 0, false
	}
	return n, true
}

// TraceJSON is the wire form of a Trace: stage durations keyed by name, in
// nanoseconds, plus rounded human-readable totals.
type TraceJSON struct {
	ID         uint64           `json:"id"`
	Client     int              `json:"client"`
	Site       int              `json:"site"`
	Seq        uint64           `json:"seq"`
	Remastered bool             `json:"remastered"`
	PartsMoved int              `json:"parts_moved"`
	Start      time.Time        `json:"start"`
	TotalNS    int64            `json:"total_ns"`
	Total      string           `json:"total"`
	Stages     map[string]int64 `json:"stages_ns"`
}

// TracesJSON converts traces to their wire form.
func TracesJSON(traces []Trace) []TraceJSON {
	out := make([]TraceJSON, len(traces))
	for i, tr := range traces {
		stages := make(map[string]int64, NumStages)
		for s, d := range tr.Stages {
			stages[Stage(s).String()] = int64(d)
		}
		out[i] = TraceJSON{
			ID:         tr.ID,
			Client:     tr.Client,
			Site:       tr.Site,
			Seq:        tr.Seq,
			Remastered: tr.Remastered,
			PartsMoved: tr.PartsMoved,
			Start:      tr.Start,
			TotalNS:    int64(tr.Total),
			Total:      tr.Total.Round(time.Microsecond).String(),
			Stages:     stages,
		}
	}
	return out
}

// SpanJSON is the wire form of a Span. Trace and span ids render as hex
// strings: uint64 values overflow the 2^53 integer precision of JSON
// consumers.
type SpanJSON struct {
	Trace  string    `json:"trace"`
	ID     string    `json:"id"`
	Parent string    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Site   int       `json:"site"`
	Start  time.Time `json:"start"`
	DurNS  int64     `json:"dur_ns"`
	Dur    string    `json:"dur"`
}

// SpansJSON converts spans to their wire form.
func SpansJSON(spans []Span) []SpanJSON {
	out := make([]SpanJSON, len(spans))
	for i, sp := range spans {
		out[i] = SpanJSON{
			Trace: fmt.Sprintf("%016x", sp.Trace),
			ID:    fmt.Sprintf("%016x", sp.ID),
			Name:  sp.Name,
			Site:  sp.Site,
			Start: sp.Start,
			DurNS: int64(sp.Dur),
			Dur:   sp.Dur.Round(time.Microsecond).String(),
		}
		if sp.Parent != 0 {
			out[i].Parent = fmt.Sprintf("%016x", sp.Parent)
		}
	}
	return out
}

// TraceSummaryJSON is the wire form of a TraceSummary.
type TraceSummaryJSON struct {
	Trace string    `json:"trace"`
	Spans int       `json:"spans"`
	Root  string    `json:"root,omitempty"`
	Start time.Time `json:"start"`
	DurNS int64     `json:"dur_ns"`
	Dur   string    `json:"dur"`
}

// SummariesJSON converts trace summaries to their wire form.
func SummariesJSON(sums []TraceSummary) []TraceSummaryJSON {
	out := make([]TraceSummaryJSON, len(sums))
	for i, s := range sums {
		out[i] = TraceSummaryJSON{
			Trace: fmt.Sprintf("%016x", s.Trace),
			Spans: s.Spans,
			Root:  s.Root,
			Start: s.Start,
			DurNS: int64(s.Dur),
			Dur:   s.Dur.Round(time.Microsecond).String(),
		}
	}
	return out
}
