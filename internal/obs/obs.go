// Package obs is DynaMast's observability substrate: a zero-dependency
// metrics registry (atomic counters, gauges and streaming histograms with
// fixed log-spaced buckets) plus a transaction-lifecycle tracer that stamps
// each update transaction's span through route → remaster → execute →
// commit → WAL-publish → refresh-apply.
//
// Every component of the system (selector, sitemgr, wal, transport, core)
// registers its instruments in the cluster's Registry; the registry renders
// to Prometheus text format for the dynamastd /metrics endpoint and to a
// structured Snapshot that travels over the RPC layer to dynactl. The
// paper motivates adaptive mastering with measured per-phase costs
// (§IV–§VI); this package is where those measurements live.
//
// Naming follows the Prometheus conventions: `dynamast_` prefix, `_total`
// suffix on counters, `_seconds` suffix on duration histograms, and
// lower-snake label keys (`site`, `origin`, `category`, `stage`, `kind`).
//
// All instruments are safe for concurrent use, and every instrument type
// tolerates a nil receiver (no-op): components instrument unconditionally
// while unit tests construct them without a registry.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value metric dimension.
type Label struct {
	Key   string
	Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Site is shorthand for the ubiquitous site-index label.
func Site(id int) Label { return Label{Key: "site", Value: fmt.Sprint(id)} }

// Kind discriminates instrument types.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota + 1
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a streaming distribution.
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (CAS loop; gauges are read-mostly).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// entry is one registered instrument.
type entry struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // read-at-snapshot collector (counter or gauge)
}

// Registry holds a cluster's instruments. A nil *Registry is valid: every
// constructor returns a nil instrument, whose methods no-op.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
	order   []string // registration order of keys (stable rendering input)
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		help:    make(map[string]string),
	}
}

// key renders the canonical identity of an instrument: name plus sorted
// labels.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns labels sorted by key (copied; callers' slices are not
// mutated).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// get returns the entry for (name, labels), creating it with mk on first
// sight. Re-registration with a different kind panics: it is a programming
// error, not a runtime condition.
func (r *Registry) get(name string, labels []Label, kind Kind, mk func(*entry)) *entry {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.RLock()
	e := r.entries[k]
	r.mu.RUnlock()
	if e == nil {
		r.mu.Lock()
		if e = r.entries[k]; e == nil {
			e = &entry{name: name, labels: labels, kind: kind}
			mk(e)
			r.entries[k] = e
			r.order = append(r.order, k)
		}
		r.mu.Unlock()
	}
	if e.kind != kind {
		panic(fmt.Sprintf("obs: %s re-registered as %s (was %s)", name, kind, e.kind))
	}
	return e
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindCounter, func(e *entry) { e.counter = &Counter{} }).counter
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindGauge, func(e *entry) { e.gauge = &Gauge{} }).gauge
}

// Histogram returns (registering if needed) the named histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, labels, KindHistogram, func(e *entry) { e.hist = NewHistogram() }).hist
}

// Func registers a collector: fn is read at snapshot time and reported with
// the given kind (KindCounter for monotonic sources, KindGauge otherwise).
// Re-registering the same identity replaces the function — components that
// are rebuilt (recovery) keep one live collector.
func (r *Registry) Func(name string, kind Kind, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	e := r.get(name, labels, kind, func(e *entry) {})
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// Help attaches HELP text to a metric name (rendered once per family).
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

// BucketCount is one histogram bucket in a snapshot: the cumulative count
// of observations ≤ UpperBound (seconds).
type BucketCount struct {
	UpperBound float64
	Count      uint64
}

// Sample is one instrument's state in a snapshot. Counter and gauge samples
// carry Value; histogram samples carry Count/Sum/Max/quantiles/Buckets.
type Sample struct {
	Name   string
	Labels []Label
	Kind   string

	Value float64

	Count   uint64
	Sum     float64
	Max     float64
	P50     float64
	P90     float64
	P99     float64
	Buckets []BucketCount
}

// ID renders the sample's identity as name{k="v",...}.
func (s Sample) ID() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Labels))
	for i, l := range s.Labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// Snapshot is a point-in-time copy of every instrument, sorted by name then
// label identity. It is plain data (gob/json friendly) so it can travel
// over the RPC layer to dynactl.
type Snapshot struct {
	At      time.Time
	Samples []Sample
	Help    map[string]string
}

// Snapshot captures every instrument. Collectors (Func) are captured under
// the registry lock (their slot may be replaced by re-registration) but
// invoked outside it, so a collector may itself touch the registry.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{At: time.Now()}
	if r == nil {
		return snap
	}
	type capture struct {
		e  *entry
		fn func() float64
	}
	r.mu.RLock()
	entries := make([]capture, 0, len(r.order))
	for _, k := range r.order {
		e := r.entries[k]
		entries = append(entries, capture{e: e, fn: e.fn})
	}
	snap.Help = make(map[string]string, len(r.help))
	for k, v := range r.help {
		snap.Help[k] = v
	}
	r.mu.RUnlock()

	for _, c := range entries {
		e := c.e
		s := Sample{Name: e.name, Labels: e.labels, Kind: e.kind.String()}
		switch {
		case c.fn != nil:
			s.Value = c.fn()
		case e.counter != nil:
			s.Value = float64(e.counter.Value())
		case e.gauge != nil:
			s.Value = e.gauge.Value()
		case e.hist != nil:
			h := e.hist
			s.Count = h.Count()
			s.Sum = h.Sum()
			s.Max = h.Max()
			s.P50 = h.Quantile(0.50)
			s.P90 = h.Quantile(0.90)
			s.P99 = h.Quantile(0.99)
			s.Buckets = h.cumulativeBuckets()
		}
		snap.Samples = append(snap.Samples, s)
	}
	sort.Slice(snap.Samples, func(i, j int) bool {
		if snap.Samples[i].Name != snap.Samples[j].Name {
			return snap.Samples[i].Name < snap.Samples[j].Name
		}
		return snap.Samples[i].ID() < snap.Samples[j].ID()
	})
	return snap
}

// Value returns the counter/gauge sample matching name and the exact label
// set, if present.
func (s Snapshot) Value(name string, labels ...Label) (float64, bool) {
	want := key(name, sortLabels(labels))
	for _, sm := range s.Samples {
		if key(sm.Name, sm.Labels) == want {
			return sm.Value, true
		}
	}
	return 0, false
}

// Get returns the full sample matching name and the exact label set.
func (s Snapshot) Get(name string, labels ...Label) (Sample, bool) {
	want := key(name, sortLabels(labels))
	for _, sm := range s.Samples {
		if key(sm.Name, sm.Labels) == want {
			return sm, true
		}
	}
	return Sample{}, false
}

// promLabels renders a label set (plus an optional extra pair) in
// Prometheus exposition syntax.
func promLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", l.Key, l.Value))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf("%s=%q", extraKey, extraVal))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtFloat renders a float the way Prometheus expects (no exponent for
// integral values, +Inf spelled out).
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Histograms emit the standard _bucket/_sum/_count series.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var lastName string
	for _, sm := range s.Samples {
		if sm.Name != lastName {
			if help := s.Help[sm.Name]; help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", sm.Name, help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", sm.Name, sm.Kind)
			lastName = sm.Name
		}
		if sm.Kind != KindHistogram.String() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", sm.Name, promLabels(sm.Labels, "", ""), fmtFloat(sm.Value)); err != nil {
				return err
			}
			continue
		}
		for _, b := range sm.Buckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", sm.Name, promLabels(sm.Labels, "le", fmtFloat(b.UpperBound)), b.Count)
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", sm.Name, promLabels(sm.Labels, "", ""), sm.Sum)
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", sm.Name, promLabels(sm.Labels, "", ""), sm.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders a human-oriented summary: one aligned line per counter
// and gauge, and count/avg/p50/p90/p99/max for histograms. dynactl and the
// dynamastd shutdown report both use it, so the console and /metrics can
// never disagree about values.
func (s Snapshot) WriteText(w io.Writer) error {
	width := 0
	for _, sm := range s.Samples {
		if n := len(sm.ID()); n > width {
			width = n
		}
	}
	for _, sm := range s.Samples {
		if sm.Kind == KindHistogram.String() {
			avg := 0.0
			if sm.Count > 0 {
				avg = sm.Sum / float64(sm.Count)
			}
			fmt.Fprintf(w, "%-*s  n=%d avg=%s p50=%s p90=%s p99=%s max=%s\n",
				width, sm.ID(), sm.Count,
				fmtSeconds(avg), fmtSeconds(sm.P50), fmtSeconds(sm.P90),
				fmtSeconds(sm.P99), fmtSeconds(sm.Max))
			continue
		}
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, sm.ID(), fmtFloat(sm.Value)); err != nil {
			return err
		}
	}
	return nil
}

// fmtSeconds renders a duration measured in (float) seconds compactly.
func fmtSeconds(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}
