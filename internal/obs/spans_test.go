package obs

import (
	"testing"
	"time"
)

func TestSpanContextSampled(t *testing.T) {
	var zero SpanContext
	if zero.Sampled() {
		t.Fatal("zero SpanContext must be unsampled")
	}
	if c := zero.Child(); c != (SpanContext{}) {
		t.Fatalf("Child of unsampled context = %+v, want zero", c)
	}
	sc := NewTraceContext()
	if !sc.Sampled() || sc.Trace == 0 || sc.Span == 0 {
		t.Fatalf("NewTraceContext returned %+v, want non-zero ids", sc)
	}
	child := sc.Child()
	if child.Trace != sc.Trace {
		t.Fatalf("Child changed trace id: %x != %x", child.Trace, sc.Trace)
	}
	if child.Span == sc.Span || child.Span == 0 {
		t.Fatalf("Child span id %x should be fresh and non-zero", child.Span)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if id == 0 {
			t.Fatal("NewSpanID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate span id %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestSamplerEveryN(t *testing.T) {
	if NewSampler(0) != nil || NewSampler(-3) != nil {
		t.Fatal("NewSampler with n <= 0 must return nil")
	}
	var nilS *Sampler
	if nilS.Sample() {
		t.Fatal("nil sampler must never sample")
	}
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampler hit %d/400 times, want 100", hits)
	}
	always := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !always.Sample() {
			t.Fatal("1-in-1 sampler must always sample")
		}
	}
}

func TestSpanRecorderRecordAndSpans(t *testing.T) {
	r := NewSpanRecorder(8)
	sc := NewTraceContext()
	start := time.Now()
	r.Record(Span{Trace: sc.Trace, ID: sc.Span, Name: "txn", Site: SelectorSite, Start: start, Dur: time.Millisecond})
	r.Record(Span{Trace: sc.Trace, Parent: sc.Span, Name: "execute", Site: 2, Start: start, Dur: time.Microsecond})
	r.Record(Span{Name: "ignored"}) // zero trace id: dropped silently

	got := r.Spans(sc.Trace)
	if len(got) != 2 {
		t.Fatalf("Spans returned %d spans, want 2", len(got))
	}
	if got[0].Name != "txn" || got[0].ID != sc.Span || got[0].Parent != 0 {
		t.Fatalf("root span wrong: %+v", got[0])
	}
	if got[1].Name != "execute" || got[1].Parent != sc.Span || got[1].Site != 2 {
		t.Fatalf("child span wrong: %+v", got[1])
	}
	if got[1].ID == 0 {
		t.Fatal("Record must assign an id to spans without one")
	}
	if r.Spans(0xdeadbeef) != nil {
		t.Fatal("unknown trace must return nil")
	}
	traces, spans, dropped := r.Counts()
	if traces != 1 || spans != 2 || dropped != 0 {
		t.Fatalf("Counts = (%d, %d, %d), want (1, 2, 0)", traces, spans, dropped)
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Record(Span{Trace: 1, Name: "x"})
	r.RegisterStamp(0, 1, SpanContext{Trace: 1, Span: 2})
	r.RefreshApplied(0, 1, 1, time.Millisecond, time.Now())
	if r.Spans(1) != nil || r.Summaries(0) != nil {
		t.Fatal("nil recorder must return nil lists")
	}
	if a, b, c := r.Counts(); a != 0 || b != 0 || c != 0 {
		t.Fatal("nil recorder counts must be zero")
	}
	r.Instrument(nil)
}

func TestSpanRecorderPerTraceCap(t *testing.T) {
	r := NewSpanRecorder(4)
	sc := NewTraceContext()
	for i := 0; i < maxSpansPerTrace+10; i++ {
		r.Record(Span{Trace: sc.Trace, Name: "s"})
	}
	if got := len(r.Spans(sc.Trace)); got != maxSpansPerTrace {
		t.Fatalf("trace retained %d spans, want cap %d", got, maxSpansPerTrace)
	}
	_, _, dropped := r.Counts()
	if dropped != 10 {
		t.Fatalf("dropped = %d, want 10", dropped)
	}
}

func TestSpanRecorderEviction(t *testing.T) {
	r := NewSpanRecorder(2)
	t1, t2, t3 := NewTraceContext(), NewTraceContext(), NewTraceContext()
	r.Record(Span{Trace: t1.Trace, ID: t1.Span, Name: "a"})
	r.Record(Span{Trace: t2.Trace, ID: t2.Span, Name: "b"})
	r.Record(Span{Trace: t3.Trace, ID: t3.Span, Name: "c"}) // evicts t1
	if r.Spans(t1.Trace) != nil {
		t.Fatal("oldest trace should have been evicted")
	}
	if r.Spans(t2.Trace) == nil || r.Spans(t3.Trace) == nil {
		t.Fatal("newer traces must survive eviction")
	}
	// A late span for the evicted trace re-admits it as a new trace (evicting
	// t2 in turn) rather than corrupting the index.
	r.Record(Span{Trace: t1.Trace, Name: "late"})
	if got := r.Spans(t1.Trace); len(got) != 1 || got[0].Name != "late" {
		t.Fatalf("re-admitted trace spans = %+v, want just the late span", got)
	}
}

func TestRefreshAppliedParentsOnCommitSpan(t *testing.T) {
	r := NewSpanRecorder(8)
	sc := NewTraceContext()
	commitID := NewSpanID()
	r.Record(Span{Trace: sc.Trace, ID: commitID, Parent: sc.Span, Name: "commit", Site: 0})
	r.RegisterStamp(0, 42, SpanContext{Trace: sc.Trace, Span: commitID})

	now := time.Now()
	r.RefreshApplied(0, 42, 3, 5*time.Millisecond, now)
	r.RefreshApplied(0, 42, 1, 2*time.Millisecond, now)
	r.RefreshApplied(0, 99, 1, time.Millisecond, now) // unknown stamp: ignored

	spans := r.Spans(sc.Trace)
	var applies []Span
	for _, sp := range spans {
		if sp.Name == "refresh_apply" {
			applies = append(applies, sp)
		}
	}
	if len(applies) != 2 {
		t.Fatalf("got %d refresh_apply spans, want 2", len(applies))
	}
	for _, sp := range applies {
		if sp.Parent != commitID {
			t.Fatalf("refresh_apply parent %x, want commit span %x", sp.Parent, commitID)
		}
	}
	if applies[0].Site != 3 || applies[0].Dur != 5*time.Millisecond {
		t.Fatalf("first apply span wrong: %+v", applies[0])
	}
	if want := now.Add(-5 * time.Millisecond); !applies[0].Start.Equal(want) {
		t.Fatalf("apply span start %v, want now-lag %v", applies[0].Start, want)
	}
}

// TestSpanStampEvictionGuard is the regression test for the byStamp
// slot-reuse hazard: when a trace is evicted, only stamp entries that still
// point at the evicted occupant may be deleted. A stamp re-registered by a
// newer trace (same origin site restarting its commit sequence) must keep
// routing refresh-apply spans to the newer trace.
func TestSpanStampEvictionGuard(t *testing.T) {
	r := NewSpanRecorder(2)
	old := NewTraceContext()
	r.Record(Span{Trace: old.Trace, ID: old.Span, Name: "txn"})
	r.RegisterStamp(0, 7, SpanContext{Trace: old.Trace, Span: old.Span})

	// A newer trace claims the same commit stamp (site 0, seq 7) before the
	// old trace is evicted — e.g. the origin site crashed and restarted its
	// sequence counter.
	newer := NewTraceContext()
	newerCommit := NewSpanID()
	r.Record(Span{Trace: newer.Trace, ID: newer.Span, Name: "txn"})
	r.RegisterStamp(0, 7, SpanContext{Trace: newer.Trace, Span: newerCommit})

	// Fill the 2-slot ring until the OLD trace's slot is reused. Its eviction
	// walks its registered stamps; the (0,7) entry now belongs to `newer` and
	// must survive.
	third := NewTraceContext()
	r.Record(Span{Trace: third.Trace, ID: third.Span, Name: "txn"}) // evicts old
	if r.Spans(old.Trace) != nil {
		t.Fatal("setup: old trace should be evicted")
	}
	if r.Spans(newer.Trace) == nil {
		t.Fatal("setup: newer trace must still be retained")
	}

	r.RefreshApplied(0, 7, 2, time.Millisecond, time.Now())
	var found bool
	for _, sp := range r.Spans(newer.Trace) {
		if sp.Name == "refresh_apply" && sp.Parent == newerCommit {
			found = true
		}
	}
	if !found {
		t.Fatal("stamp entry owned by the newer trace was dropped by the old trace's eviction")
	}
}

// TestSpanStampSlotReuseNoMisattribution covers the other side of the
// guard: after eviction, a stale stamp whose trace is gone must not attach
// refresh-apply spans to the unrelated trace now occupying the slot.
func TestSpanStampSlotReuseNoMisattribution(t *testing.T) {
	r := NewSpanRecorder(1) // single slot: every new trace reuses it
	old := NewTraceContext()
	r.Record(Span{Trace: old.Trace, ID: old.Span, Name: "txn"})
	r.RegisterStamp(5, 11, SpanContext{Trace: old.Trace, Span: old.Span})

	// RegisterStamp on a fresh trace reuses slot 0. The old stamp (5,11) was
	// dropped by the eviction; even if it had survived, the ref.trace guard
	// in RefreshApplied must reject it.
	newer := NewTraceContext()
	r.Record(Span{Trace: newer.Trace, ID: newer.Span, Name: "txn"})

	r.RefreshApplied(5, 11, 2, time.Millisecond, time.Now())
	for _, sp := range r.Spans(newer.Trace) {
		if sp.Name == "refresh_apply" {
			t.Fatalf("stale stamp attributed a refresh_apply span to an unrelated trace: %+v", sp)
		}
	}
}

func TestSpanRecorderSummaries(t *testing.T) {
	r := NewSpanRecorder(8)
	var scs []SpanContext
	for i := 0; i < 3; i++ {
		sc := NewTraceContext()
		scs = append(scs, sc)
		r.Record(Span{Trace: sc.Trace, ID: sc.Span, Name: "txn",
			Start: time.Now(), Dur: time.Duration(i+1) * time.Millisecond})
		r.Record(Span{Trace: sc.Trace, Parent: sc.Span, Name: "execute"})
	}
	sums := r.Summaries(0)
	if len(sums) != 3 {
		t.Fatalf("Summaries(0) returned %d, want 3", len(sums))
	}
	// Newest first.
	if sums[0].Trace != scs[2].Trace || sums[2].Trace != scs[0].Trace {
		t.Fatalf("summaries not newest-first: %+v", sums)
	}
	if sums[0].Spans != 2 || sums[0].Root != "txn" || sums[0].Dur != 3*time.Millisecond {
		t.Fatalf("summary wrong: %+v", sums[0])
	}
	if got := r.Summaries(2); len(got) != 2 || got[0].Trace != scs[2].Trace {
		t.Fatalf("Summaries(2) = %+v", got)
	}
}

func TestSpanRecorderInstrument(t *testing.T) {
	r := NewSpanRecorder(4)
	sc := NewTraceContext()
	r.Record(Span{Trace: sc.Trace, ID: sc.Span, Name: "txn"})
	reg := NewRegistry()
	r.Instrument(reg)
	snap := reg.Snapshot()
	if v, ok := snap.Value("dynamast_trace_traces_total"); !ok || v != 1 {
		t.Fatalf("dynamast_trace_traces_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Value("dynamast_trace_spans_total"); !ok || v != 1 {
		t.Fatalf("dynamast_trace_spans_total = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := snap.Value("dynamast_trace_spans_dropped_total"); !ok || v != 0 {
		t.Fatalf("dynamast_trace_spans_dropped_total = %v (ok=%v), want 0", v, ok)
	}
}

// TestTracerStampEvictionGuard is the Tracer-side regression test for the
// same hazard class: evicting a trace whose commit stamp was re-pointed at
// a newer ring slot must not delete the newer entry.
func TestTracerStampEvictionGuard(t *testing.T) {
	tr := NewTracer(2)
	// Slot 0: trace A with stamp (site 1, seq 9).
	tr.Record(Trace{Client: 1, Site: 1, Seq: 9})
	// Slot 1: trace B with the SAME stamp (the origin site restarted its
	// sequence counter) — the byStamp entry is re-pointed at slot 1.
	b := tr.Record(Trace{Client: 2, Site: 1, Seq: 9})
	// Slot 0 reused by an unrelated trace C: evicting A walks its stamp
	// (1, 9), which now belongs to B. The guard must keep it.
	tr.Record(Trace{Client: 3, Site: 2, Seq: 5})

	tr.RefreshApplied(1, 9, 7*time.Millisecond)
	var got Trace
	for _, x := range tr.Recent(0) {
		if x.ID == b.ID {
			got = x
		}
	}
	if got.ID == 0 {
		t.Fatal("stamp-owning trace not found in ring")
	}
	if got.Stages[StageRefreshApply] != 7*time.Millisecond {
		t.Fatalf("refresh-apply lag %v not attributed to the stamp's current owner",
			got.Stages[StageRefreshApply])
	}
}
