package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRegistry hammers every instrument type from parallel writers
// while readers snapshot and render; it exists to run under -race and to
// check the final counts are exact (no lost updates).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(64)
	const (
		writers = 8
		perG    = 2000
	)
	stop := make(chan struct{})
	var readers, writerWG sync.WaitGroup

	// Readers: snapshot, render, and query quantiles continuously until the
	// writers are done.
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				s.WritePrometheus(io.Discard)
				s.WriteText(io.Discard)
				r.Histogram("lat_seconds").Quantile(0.99)
				tr.Recent(10)
				tr.Slowest(5)
			}
		}()
	}

	for g := 0; g < writers; g++ {
		writerWG.Add(1)
		go func(g int) {
			defer writerWG.Done()
			c := r.Counter("ops_total", Site(g%2))
			ga := r.Gauge("level", Site(g%2))
			h := r.Histogram("lat_seconds")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Set(float64(i))
				ga.Add(0.5)
				h.Observe(float64(i%100) / 1e4)
				tr.Record(Trace{Site: g, Seq: uint64(i + 1),
					Total: time.Duration(i) * time.Microsecond})
				tr.RefreshApplied(g, uint64(i+1), time.Microsecond)
				// Re-registration races with other writers and readers.
				r.Func("collected", KindGauge, func() float64 { return float64(i) })
			}
		}(g)
	}
	writerWG.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	var total float64
	for _, site := range []int{0, 1} {
		v, ok := s.Value("ops_total", Site(site))
		if !ok {
			t.Fatalf("ops_total{site=%d} missing", site)
		}
		total += v
	}
	if want := float64(writers * perG); total != want {
		t.Fatalf("ops_total = %g, want %g (lost updates)", total, want)
	}
	h := r.Histogram("lat_seconds")
	if h.Count() != writers*perG {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if tr.Count() != writers*perG {
		t.Fatalf("tracer count = %d", tr.Count())
	}
}
