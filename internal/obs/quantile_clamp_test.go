package obs

import "testing"

func TestQuantileNeverExceedsMax(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 5; i++ {
		h.Observe(0)
	}
	for _, p := range []float64{0.5, 0.9, 0.99, 1} {
		if q := h.Quantile(p); q > h.Max() {
			t.Fatalf("Quantile(%v) = %v > Max %v", p, q, h.Max())
		}
	}
}
