package obs

import (
	"strings"
	"testing"
)

func TestRegisterGoRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterGoRuntime(reg)
	snap := reg.Snapshot()
	if v, ok := snap.Value("dynamast_go_goroutines"); !ok || v < 1 {
		t.Fatalf("dynamast_go_goroutines = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := snap.Value("dynamast_go_heap_bytes"); !ok || v <= 0 {
		t.Fatalf("dynamast_go_heap_bytes = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := snap.Value("dynamast_go_heap_objects"); !ok || v <= 0 {
		t.Fatalf("dynamast_go_heap_objects = %v (ok=%v), want > 0", v, ok)
	}
	if _, ok := snap.Value("dynamast_go_gc_total"); !ok {
		t.Fatal("dynamast_go_gc_total not registered")
	}
	if _, ok := snap.Get("dynamast_go_gc_pause_seconds"); !ok {
		t.Fatal("dynamast_go_gc_pause_seconds not registered")
	}

	// The runtime series render through the Prometheus exposition too.
	var sb strings.Builder
	if err := snap.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"dynamast_go_goroutines", "dynamast_go_heap_bytes",
		"dynamast_go_gc_total", "dynamast_go_gc_pause_seconds_bucket",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("Prometheus exposition missing %s", name)
		}
	}

	// Re-registration replaces collectors without panicking.
	RegisterGoRuntime(reg)
	RegisterGoRuntime(nil)
}
