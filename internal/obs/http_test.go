package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testHandler builds a Handler over a populated registry, tracer, and span
// recorder, returning the pieces for assertions.
func testHandler(t *testing.T) (http.Handler, *Tracer, *SpanRecorder) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("dynamast_test_commits_total", L("site", "0")).Add(7)
	reg.Help("dynamast_test_commits_total", "Commits at site 0.")
	reg.Gauge("dynamast_test_mastered_partitions").Set(12)
	reg.Histogram("dynamast_test_txn_seconds").Observe(0.002)

	tr := NewTracer(16)
	for i := 0; i < 3; i++ {
		trc := Trace{Client: 1, Site: i, Seq: uint64(i + 1), Start: time.Now(),
			Total: time.Duration(i+1) * time.Millisecond}
		trc.Stages[StageRoute] = time.Microsecond
		tr.Record(trc)
	}

	sr := NewSpanRecorder(16)
	return Handler(reg, tr, sr), tr, sr
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestHandlerMetricsFormat(t *testing.T) {
	h, _, _ := testHandler(t)
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `dynamast_test_commits_total{site="0"} 7`) {
		t.Fatalf("/metrics missing labelled counter; body:\n%s", body)
	}
	if !strings.Contains(body, "# HELP dynamast_test_commits_total Commits at site 0.") {
		t.Fatal("/metrics missing HELP line")
	}
	if !strings.Contains(body, "# TYPE dynamast_test_commits_total counter") {
		t.Fatal("/metrics missing TYPE line")
	}
	if !strings.Contains(body, "dynamast_test_mastered_partitions 12") {
		t.Fatal("/metrics missing gauge sample")
	}
	if !strings.Contains(body, "dynamast_test_txn_seconds_bucket") ||
		!strings.Contains(body, `le="+Inf"`) {
		t.Fatal("/metrics missing histogram le-series")
	}
}

func TestHandlerTraces(t *testing.T) {
	h, _, _ := testHandler(t)

	rec := get(t, h, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var all []TraceJSON
	if err := json.NewDecoder(rec.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("got %d traces, want 3", len(all))
	}
	// Newest first: the last-recorded trace (site 2, total 3ms) leads.
	if all[0].Site != 2 || all[0].TotalNS != int64(3*time.Millisecond) {
		t.Fatalf("first trace = %+v, want the newest", all[0])
	}
	if all[0].Stages["route"] != int64(time.Microsecond) {
		t.Fatalf("stages_ns missing route: %+v", all[0].Stages)
	}

	var limited []TraceJSON
	rec = get(t, h, "/debug/traces?n=2")
	if err := json.NewDecoder(rec.Body).Decode(&limited); err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 {
		t.Fatalf("?n=2 returned %d traces", len(limited))
	}

	var slowest []TraceJSON
	rec = get(t, h, "/debug/traces?slowest=2")
	if err := json.NewDecoder(rec.Body).Decode(&slowest); err != nil {
		t.Fatal(err)
	}
	if len(slowest) != 2 || slowest[0].TotalNS < slowest[1].TotalNS {
		t.Fatalf("?slowest=2 not ordered by latency: %+v", slowest)
	}
	if slowest[0].TotalNS != int64(3*time.Millisecond) {
		t.Fatalf("slowest trace TotalNS = %d, want 3ms", slowest[0].TotalNS)
	}
}

func TestHandlerTracesBadParams(t *testing.T) {
	h, _, _ := testHandler(t)
	for _, path := range []string{
		"/debug/traces?n=abc",
		"/debug/traces?n=-1",
		"/debug/traces?slowest=xyz",
		"/debug/traces?slowest=-5",
		"/debug/spans?n=abc",
		"/debug/spans?n=-2",
		"/debug/spans?trace=nothex",
	} {
		if rec := get(t, h, path); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
	}
}

func TestHandlerSpans(t *testing.T) {
	h, _, sr := testHandler(t)
	sc := NewTraceContext()
	sr.Record(Span{Trace: sc.Trace, ID: sc.Span, Name: "txn", Site: SelectorSite,
		Start: time.Now(), Dur: 2 * time.Millisecond})
	sr.Record(Span{Trace: sc.Trace, Parent: sc.Span, Name: "execute", Site: 1,
		Start: time.Now(), Dur: time.Millisecond})

	rec := get(t, h, "/debug/spans")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/spans = %d, want 200", rec.Code)
	}
	var sums []TraceSummaryJSON
	if err := json.NewDecoder(rec.Body).Decode(&sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Spans != 2 || sums[0].Root != "txn" {
		t.Fatalf("summaries = %+v", sums)
	}
	wantID := fmt.Sprintf("%016x", sc.Trace)
	if sums[0].Trace != wantID {
		t.Fatalf("summary trace id %q, want hex %q", sums[0].Trace, wantID)
	}

	rec = get(t, h, "/debug/spans?trace="+wantID)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/spans?trace= = %d, want 200", rec.Code)
	}
	var spans []SpanJSON
	if err := json.NewDecoder(rec.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "txn" || spans[0].Parent != "" || spans[0].Site != SelectorSite {
		t.Fatalf("root span JSON wrong: %+v", spans[0])
	}
	if spans[1].Parent != fmt.Sprintf("%016x", sc.Span) {
		t.Fatalf("child parent = %q, want root's hex id", spans[1].Parent)
	}
	if spans[1].DurNS != int64(time.Millisecond) || spans[1].Dur != "1ms" {
		t.Fatalf("child durations wrong: %+v", spans[1])
	}

	if rec := get(t, h, "/debug/spans?trace=00000000deadbeef"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace = %d, want 404", rec.Code)
	}
}

func TestHandlerFlightRecorder(t *testing.T) {
	h, _, _ := testHandler(t)
	tag := fmt.Sprintf("http-test-%d", FlightEventCount())
	RecordEvent(FlightRPCRetry, SelectorSite, "retrying (%s)", tag)

	rec := get(t, h, "/debug/flightrecorder")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/flightrecorder = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var events []FlightEvent
	if err := json.NewDecoder(rec.Body).Decode(&events); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == FlightRPCRetry && strings.Contains(ev.Msg, tag) {
			found = true
		}
	}
	if !found {
		t.Fatal("recorded event missing from /debug/flightrecorder")
	}
}

func TestHandlerNilTracerAndRecorder(t *testing.T) {
	h := Handler(NewRegistry(), nil, nil)
	for _, path := range []string{"/debug/traces", "/debug/spans", "/metrics"} {
		if rec := get(t, h, path); rec.Code != http.StatusOK {
			t.Errorf("GET %s with nil sources = %d, want 200", path, rec.Code)
		}
	}
}
