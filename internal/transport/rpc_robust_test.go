package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Robustness tests for the RPC layer: malformed frames, abrupt
// disconnects, and large payloads.

func TestRPCServerSurvivesGarbageBytes(t *testing.T) {
	s := NewServer()
	Handle(s, "echo", func(r *echoReq) (*echoResp, error) { return &echoResp{Msg: r.Msg}, nil })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A raw connection spews garbage; the server must drop it without
	// disturbing well-behaved clients.
	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte("this is not gob at all \x00\xff\x13\x37"))
	raw.Close()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", &echoReq{Msg: "still alive"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "still alive" {
		t.Fatalf("resp = %q", resp.Msg)
	}
}

func TestRPCServerSurvivesMidFrameDisconnect(t *testing.T) {
	s := NewServer()
	Handle(s, "echo", func(r *echoReq) (*echoResp, error) { return &echoResp{Msg: r.Msg}, nil })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Send a valid gob stream prefix then cut the connection.
	raw, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(raw)
	_ = enc.Encode(&frame{ID: 1, Method: "echo", Body: []byte("partial")})
	raw.Close()

	// Server keeps serving.
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("echo", &echoReq{Msg: "ok"}, &echoResp{}); err != nil {
		t.Fatal(err)
	}
}

func TestRPCLargePayloadRoundTrip(t *testing.T) {
	s := NewServer()
	type blobReq struct{ Data []byte }
	type blobResp struct{ N int }
	Handle(s, "blob", func(r *blobReq) (*blobResp, error) { return &blobResp{N: len(r.Data)}, nil })
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := make([]byte, 4<<20) // 4 MiB
	for i := range payload {
		payload[i] = byte(i)
	}
	var resp blobResp
	if err := c.Call("blob", &blobReq{Data: payload}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != len(payload) {
		t.Fatalf("server saw %d bytes", resp.N)
	}
}

func TestRPCManySequentialCalls(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 500; i++ {
		var resp echoResp
		if err := c.Call("echo", &echoReq{Msg: "m"}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestRPCHandlerPanicIsolation(t *testing.T) {
	// A handler returning an error string containing newlines and weird
	// characters must round-trip as an error.
	s := NewServer()
	Handle(s, "weird", func(r *echoReq) (*echoResp, error) {
		return nil, &weirdError{}
	})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("weird", &echoReq{}, &echoResp{})
	if err == nil || !strings.Contains(err.Error(), "line2") {
		t.Fatalf("err = %v", err)
	}
}

type weirdError struct{}

func (*weirdError) Error() string { return "line1\nline2\ttab\x00nul" }

func TestRPCConcurrentClients(t *testing.T) {
	_, addr := startEchoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 50; j++ {
				var resp echoResp
				if err := c.Call("echo", &echoReq{Msg: "x"}, &resp); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case err := <-errs:
		t.Fatal(err)
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent clients hung")
	}
}

func TestServerErrorTextNotMistakenForConnLoss(t *testing.T) {
	// An application error whose text resembles the client's connection
	// failure messages must stay a definitive server answer: no retries, no
	// ErrConnLost classification.
	s := NewServer()
	var calls atomic.Int32
	Handle(s, "flaky", func(r *echoReq) (*echoResp, error) {
		calls.Add(1)
		return nil, errors.New("upstream connection lost; client closed")
	})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.CallRetry(context.Background(), "flaky", &echoReq{}, &echoResp{},
		RetryPolicy{Attempts: 4, Base: time.Millisecond})
	if err == nil {
		t.Fatal("expected the application error")
	}
	if errors.Is(err, ErrConnLost) {
		t.Fatalf("server error classified as connection loss: %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("handler called %d times, want 1 (definitive errors are not retried)", got)
	}
}
