// Package transport models the cluster network that connects DynaMast's
// clients, site selector and data sites, and provides a real TCP RPC layer
// for multi-process deployments.
//
// The paper evaluates on a 10 Gbit/s cluster of 8–16 machines using Apache
// Thrift RPC. This reproduction runs all sites in one process; the Network
// type stands in for the wire by charging every logical message a
// configurable one-way latency plus a bandwidth-proportional transfer time,
// and by accounting messages and bytes per traffic category. The headline
// comparisons in the paper (2PC's extra round trips and blocking vs.
// DynaMast's metadata-only remastering, LEAP's data shipping) are functions
// of message counts, payload sizes and blocking windows — precisely what
// this simulated network reproduces.
package transport

import (
	"fmt"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
)

// Category classifies cluster traffic so experiments can break down network
// cost by protocol component (the paper's §VI-B7 / Appendix D analysis).
type Category int

const (
	// CatRoute is client <-> site selector traffic (begin_transaction).
	CatRoute Category = iota
	// CatTxn is client <-> data site traffic (operations, commit/abort).
	CatTxn
	// CatRemaster is selector <-> site release/grant traffic.
	CatRemaster
	// CatReplication is update propagation (refresh transactions).
	CatReplication
	// Cat2PC is distributed commit traffic (prepare/commit/abort votes).
	Cat2PC
	// CatShipping is LEAP-style data localization transfers.
	CatShipping
	// CatControl is cluster control-plane traffic (heartbeats, failover).
	CatControl
	// CatLease is selector high-availability traffic: lease
	// acquire/renew against the coordination service, standby metadata
	// deltas, and promotion-time site fencing.
	CatLease

	numCategories
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatRoute:
		return "route"
	case CatTxn:
		return "txn"
	case CatRemaster:
		return "remaster"
	case CatReplication:
		return "replication"
	case Cat2PC:
		return "2pc"
	case CatShipping:
		return "shipping"
	case CatControl:
		return "control"
	case CatLease:
		return "lease"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Categories lists all traffic categories in stable order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Config describes the simulated wire.
type Config struct {
	// OneWay is the one-way message latency (propagation + RPC stack).
	OneWay time.Duration
	// BytesPerSecond is the link bandwidth; 0 disables the transfer-time
	// term. The paper's testbed is 10 Gbit/s.
	BytesPerSecond float64
}

// DefaultConfig is the simulated cluster wire. The paper's testbed is a
// 10 Gbit/s LAN with sub-millisecond RPCs; this container's sleep
// granularity is ~1.2ms, so the simulation runs at a time scale ~8x the
// paper's — 2ms one-way RPC latency and a proportionally scaled 1.25 Gbit/s
// link — which keeps every latency *ratio* (round trips per protocol,
// transfer-time share) intact while staying well above timer resolution.
func DefaultConfig() Config {
	return Config{OneWay: 2 * time.Millisecond, BytesPerSecond: 1.25e9 / 8}
}

// Instant returns a zero-latency configuration (unit tests).
func Instant() Config { return Config{} }

// counter is a message/byte pair updated atomically.
type counter struct {
	msgs  atomic.Uint64
	bytes atomic.Uint64
}

// Network simulates the cluster wire. All methods are safe for concurrent
// use. A nil *Network is valid and free: no latency, no accounting — used
// for co-located components (the paper integrates the site manager,
// database and replication manager into one component precisely to avoid
// internal hops).
type Network struct {
	cfg      Config
	counters [numCategories]counter
	inj      atomic.Pointer[Injector]
}

// NewNetwork returns a simulated network with the given configuration.
func NewNetwork(cfg Config) *Network {
	return &Network{cfg: cfg}
}

// Config returns the network's configuration.
func (n *Network) Config() Config {
	if n == nil {
		return Config{}
	}
	return n.cfg
}

// transferTime returns the simulated time on the wire for size bytes.
func (n *Network) transferTime(size int) time.Duration {
	if n.cfg.BytesPerSecond <= 0 || size <= 0 {
		return 0
	}
	return time.Duration(float64(size) / n.cfg.BytesPerSecond * float64(time.Second))
}

// SetInjector installs (or, with nil, removes) a fault injector on the
// wire. Fault-free operation costs one atomic pointer load per message.
func (n *Network) SetInjector(inj *Injector) {
	if n == nil {
		return
	}
	n.inj.Store(inj)
}

// Injector returns the installed fault injector (nil when fault-free).
func (n *Network) Injector() *Injector {
	if n == nil {
		return nil
	}
	return n.inj.Load()
}

// Send charges one one-way message of size bytes in category cat, blocking
// the caller for the simulated network time. Injected delay faults apply;
// drop/error faults do not (legacy callers cannot observe them) — fallible
// protocol paths use SendTo.
func (n *Network) Send(cat Category, size int) {
	if n == nil {
		return
	}
	c := &n.counters[cat]
	c.msgs.Add(1)
	c.bytes.Add(uint64(size))
	d := n.cfg.OneWay + n.transferTime(size)
	if inj := n.inj.Load(); inj != nil {
		d += inj.DecideDelay(cat)
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// SendTo charges one one-way message from endpoint `from` to endpoint `to`
// (data sites use their index, the selector/control plane SelectorNode) and
// returns any injected fault: a dropped or errored message surfaces as an
// error after the wire time already spent, exactly as a timed-out RPC
// would. With no injector installed it behaves like Send and returns nil.
func (n *Network) SendTo(cat Category, from, to, size int) error {
	if n == nil {
		return nil
	}
	c := &n.counters[cat]
	c.msgs.Add(1)
	c.bytes.Add(uint64(size))
	d := n.cfg.OneWay + n.transferTime(size)
	var ferr error
	if inj := n.inj.Load(); inj != nil {
		var extra time.Duration
		ferr, extra = inj.Decide(cat, from, to)
		d += extra
	}
	if d > 0 {
		time.Sleep(d)
	}
	return ferr
}

// RoundTrip charges a request of reqSize bytes and a response of respSize
// bytes (two one-way messages).
func (n *Network) RoundTrip(cat Category, reqSize, respSize int) {
	n.Send(cat, reqSize)
	n.Send(cat, respSize)
}

// Account records a message without sleeping; used by asynchronous paths
// (update propagation) where the pipeline delay is modelled elsewhere.
func (n *Network) Account(cat Category, size int) {
	if n == nil {
		return
	}
	c := &n.counters[cat]
	c.msgs.Add(1)
	c.bytes.Add(uint64(size))
}

// CategoryStats is a snapshot of one category's counters.
type CategoryStats struct {
	Category Category
	Messages uint64
	Bytes    uint64
}

// Stats returns a snapshot of all categories.
func (n *Network) Stats() []CategoryStats {
	out := make([]CategoryStats, numCategories)
	for i := range out {
		out[i].Category = Category(i)
		if n != nil {
			out[i].Messages = n.counters[i].msgs.Load()
			out[i].Bytes = n.counters[i].bytes.Load()
		}
	}
	return out
}

// Instrument re-exports the per-category message/byte counters through an
// obs registry (read at snapshot time, so Send/Account stay untouched).
func (n *Network) Instrument(reg *obs.Registry) {
	if n == nil || reg == nil {
		return
	}
	reg.Help("dynamast_net_messages_total", "Simulated-wire messages by traffic category.")
	reg.Help("dynamast_net_bytes_total", "Simulated-wire bytes by traffic category.")
	reg.Help("dynamast_rpc_retries_total", "RPC attempts retried after transient failures (process-wide).")
	reg.Func("dynamast_rpc_retries_total", obs.KindCounter,
		func() float64 { return float64(RPCRetries()) })
	for _, cat := range Categories() {
		c := &n.counters[cat]
		lbl := obs.L("category", cat.String())
		reg.Func("dynamast_net_messages_total", obs.KindCounter,
			func() float64 { return float64(c.msgs.Load()) }, lbl)
		reg.Func("dynamast_net_bytes_total", obs.KindCounter,
			func() float64 { return float64(c.bytes.Load()) }, lbl)
	}
}

// Reset zeroes all counters.
func (n *Network) Reset() {
	if n == nil {
		return
	}
	for i := range n.counters {
		n.counters[i].msgs.Store(0)
		n.counters[i].bytes.Store(0)
	}
}
