package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"dynamast/internal/codec"
	"dynamast/internal/obs"
)

// This file implements the real networked RPC used by multi-process
// deployments (cmd/dynamastd, examples/cluster): a length-prefixed binary
// request/response protocol with per-connection multiplexing. The paper
// uses Apache Thrift (compact protocol) for the same role; this layer
// mirrors it with the internal/codec wire format.
//
// Wire shape: every message is [u32 length][payload], little-endian, where
// the payload is a codec frame — magic+version header, a flags byte
// (response / has-error), the call id, the method name, an optional error
// string, and the request/response body as the frame's tail. Bodies of
// types that implement codec.Message travel in the binary format; other
// types fall back to gob (the first body byte discriminates), which keeps
// rarely-called operator RPCs with deep payloads (metrics snapshots) off
// the hand-rolled schema list without a second protocol.
//
// Buffer discipline: encode scratch and read buffers come from the codec
// pool. A read buffer is owned by the message decoded from it and is
// returned to the pool once the body has been consumed — on the server,
// after the handler returns (handlers must copy what they keep, which the
// codec's decode rule already guarantees); on the client, after the reply
// is decoded.

// frame is the wire unit, used for both requests and responses. Trace/Span
// carry the distributed trace context of sampled requests; both zero means
// unsampled, and the frame encoding is then byte-identical to the
// pre-tracing wire format (the context rides behind a reserved flags bit).
type frame struct {
	ID     uint64
	Method string
	Body   []byte
	Err    string
	Resp   bool
	Trace  uint64
	Span   uint64
}

const (
	rpcFlagResp  = 1 << 0
	rpcFlagErr   = 1 << 1
	rpcFlagTrace = 1 << 2

	// maxRPCFrame bounds a message's claimed length so a corrupt or
	// malicious length prefix cannot ask for an absurd allocation.
	maxRPCFrame = 64 << 20

	// rpcReadBuffer sizes each connection's buffered reader.
	rpcReadBuffer = 64 << 10
)

// appendFrame appends f's codec payload (header, flags, id, method,
// optional error, body tail) to buf.
func appendFrame(buf []byte, f *frame) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	var flags byte
	if f.Resp {
		flags |= rpcFlagResp
	}
	if f.Err != "" {
		flags |= rpcFlagErr
	}
	if f.Trace != 0 {
		flags |= rpcFlagTrace
	}
	buf = append(buf, flags)
	buf = codec.AppendUvarint(buf, f.ID)
	buf = codec.AppendString(buf, f.Method)
	if f.Err != "" {
		buf = codec.AppendString(buf, f.Err)
	}
	if f.Trace != 0 {
		buf = codec.AppendTraceContext(buf, f.Trace, f.Span)
	}
	return append(buf, f.Body...)
}

// decodeFrame parses a codec payload into f. f.Body aliases payload — the
// caller keeps the backing buffer alive until the body is consumed.
func decodeFrame(payload []byte, f *frame) error {
	r := codec.NewReader(payload)
	flags := byte(r.Uvarint())
	f.ID = r.Uvarint()
	f.Method = r.String()
	f.Resp = flags&rpcFlagResp != 0
	if flags&rpcFlagErr != 0 {
		f.Err = r.String()
	} else {
		f.Err = ""
	}
	if flags&rpcFlagTrace != 0 {
		f.Trace, f.Span = r.TraceContext()
	} else {
		f.Trace, f.Span = 0, 0
	}
	f.Body = r.Tail()
	return r.Err()
}

// writeFrame serializes f with a length prefix and writes it to w in one
// call. The caller serializes writers (per-connection write mutex).
func writeFrame(w io.Writer, f *frame) error {
	bp := codec.GetBuf()
	buf := append((*bp)[:0], 0, 0, 0, 0) // length prefix placeholder
	start := time.Now()
	buf = appendFrame(buf, f)
	codec.RecordEncode(codec.SurfaceRPC, len(buf)-4, time.Since(start))
	if len(buf)-4 > maxRPCFrame {
		*bp = buf[:0]
		codec.PutBuf(bp)
		return fmt.Errorf("rpc: frame too large (%d bytes)", len(buf)-4)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err := w.Write(buf)
	*bp = buf[:0]
	codec.PutBuf(bp)
	return err
}

// readFrame reads one length-prefixed message from br into a pooled buffer
// and decodes it into f. On success the returned buffer backs f.Body; the
// caller must codec.PutBuf it once the body is dead. On error the buffer
// has already been recycled.
func readFrame(br *bufio.Reader, f *frame) (*[]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxRPCFrame {
		return nil, fmt.Errorf("rpc: frame length %d exceeds limit", n)
	}
	bp := codec.GetBuf()
	buf := *bp
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	*bp = buf
	if _, err := io.ReadFull(br, buf); err != nil {
		codec.PutBuf(bp)
		return nil, err
	}
	start := time.Now()
	err := decodeFrame(buf, f)
	codec.RecordDecode(codec.SurfaceRPC, int(n), time.Since(start))
	if err != nil {
		codec.PutBuf(bp)
		return nil, fmt.Errorf("rpc: bad frame: %w", err)
	}
	return bp, nil
}

// Handler processes one request body and appends its response body to dst
// (which arrives empty with pooled capacity), returning the extended
// slice. The request body is only valid for the duration of the call;
// anything retained must be copied — which the codec's decode ownership
// rule provides for free.
type Handler func(req []byte, dst []byte) ([]byte, error)

// TracedHandler is a Handler that additionally receives the request's
// distributed trace context (zero for unsampled requests).
type TracedHandler func(tc obs.SpanContext, req []byte, dst []byte) ([]byte, error)

// Server dispatches framed RPC requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]TracedHandler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]TracedHandler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for method. Registering after Serve starts is
// allowed.
func (s *Server) Register(method string, h Handler) {
	s.RegisterTraced(method, func(_ obs.SpanContext, req, dst []byte) ([]byte, error) {
		return h(req, dst)
	})
}

// RegisterTraced installs a trace-context-aware handler for method.
func (s *Server) RegisterTraced(method string, h TracedHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// ListenAndServe listens on addr and serves until Close. It returns once
// the listener is bound; serving continues in the background.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReaderSize(conn, rpcReadBuffer)
	var wmu sync.Mutex
	for {
		var req frame
		bp, err := readFrame(br, &req)
		if err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		go func(req frame, bp *[]byte) {
			resp := frame{ID: req.ID, Method: req.Method, Resp: true}
			bodyBuf := codec.GetBuf()
			body := (*bodyBuf)[:0]
			if h == nil {
				resp.Err = fmt.Sprintf("rpc: unknown method %q", req.Method)
			} else if body, err = h(obs.SpanContext{Trace: req.Trace, Span: req.Span}, req.Body, body); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Body = body
			}
			// The handler has returned; the request body is dead.
			codec.PutBuf(bp)
			wmu.Lock()
			_ = writeFrame(conn, &resp)
			wmu.Unlock()
			if body != nil {
				*bodyBuf = body[:0]
			}
			codec.PutBuf(bodyBuf)
		}(req, bp)
	}
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a multiplexing RPC client for one server connection. Safe for
// concurrent use.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	err     error
}

// callResult delivers either a response frame or a transport-level failure
// to a pending call. Keeping the failure as a typed error (rather than
// flattening it into frame.Err, which carries server-side error strings)
// lets retry logic distinguish connection loss from an application error
// whose text merely resembles one. buf, when non-nil, is the pooled read
// buffer backing resp.Body; the receiver recycles it after decoding.
type callResult struct {
	resp frame
	buf  *[]byte
	err  error
}

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan callResult),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, rpcReadBuffer)
	for {
		var resp frame
		bp, err := readFrame(br, &resp)
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- callResult{resp: resp, buf: bp}
		} else {
			codec.PutBuf(bp) // call was abandoned; nobody will decode this
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: err}
	}
}

// ErrTimeout is returned (wrapped) when a call's context expires before the
// response arrives; the request may still execute at the server, so only
// idempotent methods should be retried after it.
var ErrTimeout = errors.New("rpc: call timed out")

// ErrConnLost is returned (wrapped) when the transport connection fails
// before a response arrives; like ErrTimeout, the request may still have
// executed at the server, so only idempotent methods should be retried
// after it. Server-side application errors cross the wire as strings and
// are never classified as connection loss, whatever their text.
var ErrConnLost = errors.New("rpc: connection lost")

// isConnErr reports connection failures (the other retryable error class).
func isConnErr(err error) bool {
	return errors.Is(err, ErrConnLost)
}

// Call invokes method with the encoded arg and decodes the response into
// reply (which may be nil for methods without results). Equivalent to
// CallCtx with a background context (no deadline).
func (c *Client) Call(method string, arg, reply any) error {
	return c.CallCtx(context.Background(), method, arg, reply)
}

// CallTimeout is Call with a per-call timeout (0 = no deadline).
func (c *Client) CallTimeout(method string, arg, reply any, timeout time.Duration) error {
	if timeout <= 0 {
		return c.Call(method, arg, reply)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.CallCtx(ctx, method, arg, reply)
}

// CallCtx invokes method, honouring the context's deadline/cancellation: an
// expired context abandons the pending call (the late response frame is
// discarded by the read loop) and returns an error wrapping ErrTimeout and
// the context error.
func (c *Client) CallCtx(ctx context.Context, method string, arg, reply any) error {
	return c.CallTraced(ctx, obs.SpanContext{}, method, arg, reply)
}

// CallTraced is CallCtx carrying a distributed trace context: a sampled tc
// rides the request frame behind the trace flags bit, so the server-side
// handler can join its spans to the caller's trace. A zero tc leaves the
// frame byte-identical to an untraced call.
func (c *Client) CallTraced(ctx context.Context, tc obs.SpanContext, method string, arg, reply any) error {
	bodyBuf := codec.GetBuf()
	body, err := encodeBody(arg, (*bodyBuf)[:0])
	if err != nil {
		codec.PutBuf(bodyBuf)
		return fmt.Errorf("rpc: encode %s: %w", method, err)
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		codec.PutBuf(bodyBuf)
		return err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = writeFrame(c.conn, &frame{ID: id, Method: method, Body: body, Trace: tc.Trace, Span: tc.Span})
	c.wmu.Unlock()
	if body != nil {
		*bodyBuf = body[:0]
	}
	codec.PutBuf(bodyBuf)
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("rpc: send %s: %w", method, err)
	}

	var res callResult
	select {
	case res = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Drain a response that raced the cancellation.
		select {
		case res = <-ch:
		default:
			return fmt.Errorf("rpc: %s: %w: %w", method, ErrTimeout, ctx.Err())
		}
	}
	if res.err != nil {
		return res.err
	}
	err = nil
	if res.resp.Err != "" {
		err = errors.New(res.resp.Err)
	} else if reply != nil {
		err = decodeBody(res.resp.Body, reply)
	}
	if res.buf != nil {
		codec.PutBuf(res.buf) // reply decoded (and copied); buffer is dead
	}
	return err
}

// RetryPolicy bounds CallRetry: at most Attempts tries, each under
// PerCallTimeout (0 = none), sleeping Base<<n plus up to 50% jitter between
// tries, capped at MaxBackoff.
type RetryPolicy struct {
	Attempts       int
	PerCallTimeout time.Duration
	Base           time.Duration
	MaxBackoff     time.Duration
	// Seed fixes the jitter stream (0 = constant backoff, no jitter).
	Seed int64
}

// DefaultRetryPolicy suits idempotent metadata RPCs: 4 attempts, 2s per
// call, 25ms base backoff capped at 400ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 4, PerCallTimeout: 2 * time.Second, Base: 25 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
}

// CallRetry invokes an IDEMPOTENT method with bounded retries under p:
// timeouts and lost connections are retried with exponential backoff plus
// jitter; application errors returned by the handler are not (the server
// answered; retrying would not change the outcome). The context bounds the
// whole loop.
func (c *Client) CallRetry(ctx context.Context, method string, arg, reply any, p RetryPolicy) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			CountRetry()
			backoff := p.Base << (attempt - 1)
			if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
			if rng != nil && backoff > 0 {
				backoff += time.Duration(rng.Int63n(int64(backoff)/2 + 1))
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("rpc: %s: %w", method, ctx.Err())
			case <-time.After(backoff):
			}
		}
		callCtx := ctx
		var cancel context.CancelFunc
		if p.PerCallTimeout > 0 {
			callCtx, cancel = context.WithTimeout(ctx, p.PerCallTimeout)
		}
		err = c.CallCtx(callCtx, method, arg, reply)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrTimeout) && !isConnErr(err) {
			return err // definitive server answer; not retryable
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("rpc: %s failed after %d attempts: %w", method, p.Attempts, err)
}

// Close closes the connection; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(fmt.Errorf("%w: client closed", ErrConnLost))
	return err
}

// Handle registers a typed handler: the request body is decoded into Req,
// and the returned Resp is encoded into the response. Types implementing
// codec.Message use their binary wire schema; anything else rides the gob
// fallback (see encodeBody).
func Handle[Req, Resp any](s *Server, method string, fn func(*Req) (*Resp, error)) {
	HandleTraced(s, method, func(_ obs.SpanContext, req *Req) (*Resp, error) {
		return fn(req)
	})
}

// HandleTraced registers a typed handler that also receives the request's
// distributed trace context (zero when the caller did not sample).
func HandleTraced[Req, Resp any](s *Server, method string, fn func(obs.SpanContext, *Req) (*Resp, error)) {
	s.RegisterTraced(method, func(tc obs.SpanContext, body, dst []byte) ([]byte, error) {
		var req Req
		if err := decodeBody(body, &req); err != nil {
			return nil, fmt.Errorf("rpc: decode %s: %w", method, err)
		}
		resp, err := fn(tc, &req)
		if err != nil {
			return nil, err
		}
		return encodeBody(resp, dst)
	})
}

// encodeBody appends v's encoding to dst: the binary wire schema when v
// implements codec.Message, a self-contained gob stream otherwise (whose
// first byte is never the codec magic, so decodeBody can discriminate).
// A nil v encodes as an empty body.
func encodeBody(v any, dst []byte) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	if m, ok := v.(codec.Message); ok {
		return m.MarshalTo(dst), nil
	}
	sw := sliceWriter(dst)
	if err := gob.NewEncoder(&sw).Encode(v); err != nil {
		return nil, err
	}
	return sw, nil
}

// decodeBody decodes a body produced by encodeBody into v. An empty body
// leaves v at its zero value (nil request/reply convention).
func decodeBody(body []byte, v any) error {
	if len(body) == 0 {
		return nil
	}
	if codec.IsBinary(body) {
		m, ok := v.(codec.Message)
		if !ok {
			return fmt.Errorf("rpc: binary body for non-Message type %T", v)
		}
		return m.Unmarshal(body)
	}
	return gob.NewDecoder(byteReader{&body}).Decode(v)
}

type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

type byteReader struct{ b *[]byte }

func (r byteReader) Read(p []byte) (int, error) {
	if len(*r.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, *r.b)
	*r.b = (*r.b)[n:]
	return n, nil
}
