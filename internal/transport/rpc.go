package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// This file implements the real networked RPC used by multi-process
// deployments (cmd/dynamastd, examples/cluster): a minimal gob-framed
// request/response protocol with per-connection multiplexing. The paper
// uses Apache Thrift for the same role; only request/response semantics are
// required by the system.

// frame is the wire unit, used for both requests and responses.
type frame struct {
	ID     uint64
	Method string
	Body   []byte
	Err    string
	Resp   bool
}

// Handler processes one request body and returns a response body.
type Handler func(body []byte) ([]byte, error)

// Server dispatches gob-framed RPC requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for method. Registering after Serve starts is
// allowed.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// ListenAndServe listens on addr and serves until Close. It returns once
// the listener is bound; serving continues in the background.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	for {
		var req frame
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		go func(req frame) {
			resp := frame{ID: req.ID, Method: req.Method, Resp: true}
			if h == nil {
				resp.Err = fmt.Sprintf("rpc: unknown method %q", req.Method)
			} else if body, err := h(req.Body); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Body = body
			}
			wmu.Lock()
			defer wmu.Unlock()
			_ = enc.Encode(&resp)
		}(req)
	}
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a multiplexing RPC client for one server connection. Safe for
// concurrent use.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan frame
	err     error
}

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan frame),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp frame
		if err := dec.Decode(&resp); err != nil {
			c.fail(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- frame{Err: err.Error()}
	}
}

// Call invokes method with the gob-encoded arg and decodes the response
// into reply (which may be nil for methods without results).
func (c *Client) Call(method string, arg, reply any) error {
	body, err := encodeGob(arg)
	if err != nil {
		return fmt.Errorf("rpc: encode %s: %w", method, err)
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = c.enc.Encode(&frame{ID: id, Method: method, Body: body})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("rpc: send %s: %w", method, err)
	}

	resp := <-ch
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	if reply == nil {
		return nil
	}
	return decodeGob(resp.Body, reply)
}

// Close closes the connection; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(errors.New("rpc: client closed"))
	return err
}

// Handle registers a typed handler: the request body is gob-decoded into
// Req, and the returned Resp is gob-encoded.
func Handle[Req, Resp any](s *Server, method string, fn func(*Req) (*Resp, error)) {
	s.Register(method, func(body []byte) ([]byte, error) {
		var req Req
		if err := decodeGob(body, &req); err != nil {
			return nil, fmt.Errorf("rpc: decode %s: %w", method, err)
		}
		resp, err := fn(&req)
		if err != nil {
			return nil, err
		}
		return encodeGob(resp)
	})
}

func encodeGob(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var buf sliceWriter
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf, nil
}

func decodeGob(body []byte, v any) error {
	if len(body) == 0 {
		return nil
	}
	return gob.NewDecoder(byteReader{&body}).Decode(v)
}

type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

type byteReader struct{ b *[]byte }

func (r byteReader) Read(p []byte) (int, error) {
	if len(*r.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, *r.b)
	*r.b = (*r.b)[n:]
	return n, nil
}
