package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// This file implements the real networked RPC used by multi-process
// deployments (cmd/dynamastd, examples/cluster): a minimal gob-framed
// request/response protocol with per-connection multiplexing. The paper
// uses Apache Thrift for the same role; only request/response semantics are
// required by the system.

// frame is the wire unit, used for both requests and responses.
type frame struct {
	ID     uint64
	Method string
	Body   []byte
	Err    string
	Resp   bool
}

// Handler processes one request body and returns a response body.
type Handler func(body []byte) ([]byte, error)

// Server dispatches gob-framed RPC requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Register installs a handler for method. Registering after Serve starts is
// allowed.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// ListenAndServe listens on addr and serves until Close. It returns once
// the listener is bound; serving continues in the background.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	for {
		var req frame
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		go func(req frame) {
			resp := frame{ID: req.ID, Method: req.Method, Resp: true}
			if h == nil {
				resp.Err = fmt.Sprintf("rpc: unknown method %q", req.Method)
			} else if body, err := h(req.Body); err != nil {
				resp.Err = err.Error()
			} else {
				resp.Body = body
			}
			wmu.Lock()
			defer wmu.Unlock()
			_ = enc.Encode(&resp)
		}(req)
	}
}

// Close stops the listener and closes all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a multiplexing RPC client for one server connection. Safe for
// concurrent use.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder
	wmu  sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan callResult
	err     error
}

// callResult delivers either a response frame or a transport-level failure
// to a pending call. Keeping the failure as a typed error (rather than
// flattening it into frame.Err, which carries server-side error strings)
// lets retry logic distinguish connection loss from an application error
// whose text merely resembles one.
type callResult struct {
	resp frame
	err  error
}

// Dial connects to an RPC server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan callResult),
	}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	dec := gob.NewDecoder(c.conn)
	for {
		var resp frame
		if err := dec.Decode(&resp); err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrConnLost, err))
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- callResult{resp: resp}
		}
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		ch <- callResult{err: err}
	}
}

// ErrTimeout is returned (wrapped) when a call's context expires before the
// response arrives; the request may still execute at the server, so only
// idempotent methods should be retried after it.
var ErrTimeout = errors.New("rpc: call timed out")

// ErrConnLost is returned (wrapped) when the transport connection fails
// before a response arrives; like ErrTimeout, the request may still have
// executed at the server, so only idempotent methods should be retried
// after it. Server-side application errors cross the wire as strings and
// are never classified as connection loss, whatever their text.
var ErrConnLost = errors.New("rpc: connection lost")

// isConnErr reports connection failures (the other retryable error class).
func isConnErr(err error) bool {
	return errors.Is(err, ErrConnLost)
}

// Call invokes method with the gob-encoded arg and decodes the response
// into reply (which may be nil for methods without results). Equivalent to
// CallCtx with a background context (no deadline).
func (c *Client) Call(method string, arg, reply any) error {
	return c.CallCtx(context.Background(), method, arg, reply)
}

// CallTimeout is Call with a per-call timeout (0 = no deadline).
func (c *Client) CallTimeout(method string, arg, reply any, timeout time.Duration) error {
	if timeout <= 0 {
		return c.Call(method, arg, reply)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.CallCtx(ctx, method, arg, reply)
}

// CallCtx invokes method, honouring the context's deadline/cancellation: an
// expired context abandons the pending call (the late response frame is
// discarded by the read loop) and returns an error wrapping ErrTimeout and
// the context error.
func (c *Client) CallCtx(ctx context.Context, method string, arg, reply any) error {
	body, err := encodeGob(arg)
	if err != nil {
		return fmt.Errorf("rpc: encode %s: %w", method, err)
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan callResult, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err = c.enc.Encode(&frame{ID: id, Method: method, Body: body})
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("rpc: send %s: %w", method, err)
	}

	var res callResult
	select {
	case res = <-ch:
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Drain a response that raced the cancellation.
		select {
		case res = <-ch:
		default:
			return fmt.Errorf("rpc: %s: %w: %w", method, ErrTimeout, ctx.Err())
		}
	}
	if res.err != nil {
		return res.err
	}
	if res.resp.Err != "" {
		return errors.New(res.resp.Err)
	}
	if reply == nil {
		return nil
	}
	return decodeGob(res.resp.Body, reply)
}

// RetryPolicy bounds CallRetry: at most Attempts tries, each under
// PerCallTimeout (0 = none), sleeping Base<<n plus up to 50% jitter between
// tries, capped at MaxBackoff.
type RetryPolicy struct {
	Attempts       int
	PerCallTimeout time.Duration
	Base           time.Duration
	MaxBackoff     time.Duration
	// Seed fixes the jitter stream (0 = constant backoff, no jitter).
	Seed int64
}

// DefaultRetryPolicy suits idempotent metadata RPCs: 4 attempts, 2s per
// call, 25ms base backoff capped at 400ms.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 4, PerCallTimeout: 2 * time.Second, Base: 25 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}
}

// CallRetry invokes an IDEMPOTENT method with bounded retries under p:
// timeouts and lost connections are retried with exponential backoff plus
// jitter; application errors returned by the handler are not (the server
// answered; retrying would not change the outcome). The context bounds the
// whole loop.
func (c *Client) CallRetry(ctx context.Context, method string, arg, reply any, p RetryPolicy) error {
	if p.Attempts <= 0 {
		p.Attempts = 1
	}
	var rng *rand.Rand
	if p.Seed != 0 {
		rng = rand.New(rand.NewSource(p.Seed))
	}
	var err error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			CountRetry()
			backoff := p.Base << (attempt - 1)
			if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
			if rng != nil && backoff > 0 {
				backoff += time.Duration(rng.Int63n(int64(backoff)/2 + 1))
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("rpc: %s: %w", method, ctx.Err())
			case <-time.After(backoff):
			}
		}
		callCtx := ctx
		var cancel context.CancelFunc
		if p.PerCallTimeout > 0 {
			callCtx, cancel = context.WithTimeout(ctx, p.PerCallTimeout)
		}
		err = c.CallCtx(callCtx, method, arg, reply)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrTimeout) && !isConnErr(err) {
			return err // definitive server answer; not retryable
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return fmt.Errorf("rpc: %s failed after %d attempts: %w", method, p.Attempts, err)
}

// Close closes the connection; in-flight calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(fmt.Errorf("%w: client closed", ErrConnLost))
	return err
}

// Handle registers a typed handler: the request body is gob-decoded into
// Req, and the returned Resp is gob-encoded.
func Handle[Req, Resp any](s *Server, method string, fn func(*Req) (*Resp, error)) {
	s.Register(method, func(body []byte) ([]byte, error) {
		var req Req
		if err := decodeGob(body, &req); err != nil {
			return nil, fmt.Errorf("rpc: decode %s: %w", method, err)
		}
		resp, err := fn(&req)
		if err != nil {
			return nil, err
		}
		return encodeGob(resp)
	})
}

func encodeGob(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var buf sliceWriter
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf, nil
}

func decodeGob(body []byte, v any) error {
	if len(body) == 0 {
		return nil
	}
	return gob.NewDecoder(byteReader{&body}).Decode(v)
}

type sliceWriter []byte

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}

type byteReader struct{ b *[]byte }

func (r byteReader) Read(p []byte) (int, error) {
	if len(*r.b) == 0 {
		return 0, errors.New("EOF")
	}
	n := copy(p, *r.b)
	*r.b = (*r.b)[n:]
	return n, nil
}
