package transport

import (
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// Wire-size estimators. The simulated network charges transfer time and
// byte counters from these estimates instead of actually serializing on the
// hot path. Estimates use a small per-message envelope plus the natural
// encoded size of each field, which tracks a compact binary codec (like the
// Thrift compact protocol the paper uses) closely enough for bandwidth
// accounting.

// MsgOverhead is the per-message envelope: framing, method id, txn id.
const MsgOverhead = 24

// refOverhead covers a RowRef: table id (2) + key (8).
const refOverhead = 10

// SizeOfVector returns the encoded size of a version vector.
func SizeOfVector(v vclock.Vector) int { return 2 + 8*len(v) }

// SizeOfRefs returns the encoded size of a row-reference list.
func SizeOfRefs(refs []storage.RowRef) int { return 2 + refOverhead*len(refs) }

// SizeOfWrites returns the encoded size of a write set with payloads.
func SizeOfWrites(writes []storage.Write) int {
	n := 2
	for _, w := range writes {
		n += refOverhead + 3 + len(w.Data)
	}
	return n
}

// SizeOfRows returns the encoded size of key/value rows (scan results, data
// shipping payloads).
func SizeOfRows(rows []storage.KV) int {
	n := 2
	for _, r := range rows {
		n += 8 + 3 + len(r.Value)
	}
	return n
}

// SizeOfPartitions returns the encoded size of a partition id list.
func SizeOfPartitions(parts []uint64) int { return 2 + 8*len(parts) }
