package transport

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
)

// Fault injection. The simulated Network (and, through SendTo, any caller
// that identifies its endpoints) consults an Injector before delivering a
// message. Rules are per traffic category and probabilistic; the decision
// stream is driven by a counter-based splitmix64 generator, so a fixed seed
// yields a fixed sequence of fault decisions — chaos runs are reproducible
// and CI failures replay.

// FaultKind is the class of injected failure.
type FaultKind uint8

const (
	// FaultDrop loses the message: the caller observes a send error, as a
	// timed-out RPC would surface.
	FaultDrop FaultKind = iota
	// FaultDelay delivers the message after an extra fixed delay.
	FaultDelay
	// FaultError delivers a remote-error response (the RPC reaches the
	// peer's stack but fails there).
	FaultError

	numFaultKinds
)

// String names the kind (used in fault specs and metric labels).
func (k FaultKind) String() string {
	switch k {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultError:
		return "error"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// FaultError reports an injected fault to the caller. Protocol layers treat
// it as transient: idempotent calls retry, others abort with a retryable
// error.
type Fault struct {
	Category Category
	Kind     FaultKind
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("transport: injected %s fault on %s traffic", f.Kind, f.Category)
}

// errInjected tags every injected fault for errors.Is.
var errInjected = errors.New("transport: injected fault")

// Is makes errors.Is(err, ErrInjected) true for all injected faults.
func (f *Fault) Is(target error) bool { return target == errInjected }

// ErrInjected matches any injected fault via errors.Is.
var ErrInjected = errInjected

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool { return errors.Is(err, errInjected) }

// Rule is one fault-injection rule: with probability Prob, apply Kind to a
// message in Category. Delay is the extra latency of FaultDelay rules.
type Rule struct {
	Category Category
	Kind     FaultKind
	Prob     float64
	Delay    time.Duration
}

// String renders the rule in fault-spec syntax.
func (r Rule) String() string {
	if r.Kind == FaultDelay {
		return fmt.Sprintf("%s:%s:%v:%v", r.Category, r.Kind, r.Prob, r.Delay)
	}
	return fmt.Sprintf("%s:%s:%v", r.Category, r.Kind, r.Prob)
}

// Injector decides, deterministically under a fixed seed, which messages
// fault. Safe for concurrent use; a nil *Injector injects nothing.
type Injector struct {
	seed uint64
	ctr  atomic.Uint64

	mu    sync.RWMutex
	rules []Rule
	// oneWay holds directed site partitions: oneWay[{from,to}] means
	// messages from -> to are dropped ({-1} is the selector/control node).
	oneWay map[[2]int]struct{}

	injected [numCategories][numFaultKinds]atomic.Uint64

	instrumented atomic.Bool
}

// NewInjector returns an injector with no rules. The seed fixes the
// decision stream: two injectors with equal seeds, rules and call sequences
// inject identical fault sequences.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: uint64(seed), oneWay: make(map[[2]int]struct{})}
}

// Seed returns the seed fixing the injector's decision stream.
func (i *Injector) Seed() int64 { return int64(i.seed) }

// SetRules replaces the rule set.
func (i *Injector) SetRules(rules ...Rule) {
	i.mu.Lock()
	i.rules = append([]Rule(nil), rules...)
	i.mu.Unlock()
}

// AddRule appends one rule.
func (i *Injector) AddRule(r Rule) {
	i.mu.Lock()
	i.rules = append(i.rules, r)
	i.mu.Unlock()
}

// Rules returns a copy of the rule set.
func (i *Injector) Rules() []Rule {
	if i == nil {
		return nil
	}
	i.mu.RLock()
	defer i.mu.RUnlock()
	return append([]Rule(nil), i.rules...)
}

// PartitionOneWay drops all messages from site `from` to site `to` (use
// SelectorNode for the selector/control plane) until Heal.
func (i *Injector) PartitionOneWay(from, to int) {
	i.mu.Lock()
	i.oneWay[[2]int{from, to}] = struct{}{}
	i.mu.Unlock()
}

// Heal removes a one-way partition.
func (i *Injector) Heal(from, to int) {
	i.mu.Lock()
	delete(i.oneWay, [2]int{from, to})
	i.mu.Unlock()
}

// HealAll removes every partition rule.
func (i *Injector) HealAll() {
	i.mu.Lock()
	i.oneWay = make(map[[2]int]struct{})
	i.mu.Unlock()
}

// Partitioned reports whether messages from -> to are currently cut.
func (i *Injector) Partitioned(from, to int) bool {
	if i == nil {
		return false
	}
	i.mu.RLock()
	_, ok := i.oneWay[[2]int{from, to}]
	i.mu.RUnlock()
	return ok
}

// SelectorNode is the endpoint id of the site selector / control plane in
// partition rules (data sites use their site index).
const SelectorNode = -1

// roll returns the next uniform [0,1) variate of the decision stream.
// splitmix64 over an atomic counter: position k of the stream is the same
// for every run with the same seed, independent of wall clock.
func (i *Injector) roll() float64 {
	z := i.seed + i.ctr.Add(1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// Decide rolls the rules for one message in cat between from and to and
// returns the injected fault (nil = deliver normally) plus any extra delay
// to charge. Partition rules are checked first and count as drops.
func (i *Injector) Decide(cat Category, from, to int) (err error, delay time.Duration) {
	if i == nil {
		return nil, 0
	}
	if i.Partitioned(from, to) {
		i.injected[cat][FaultDrop].Add(1)
		obs.RecordEvent(obs.FlightFaultInject, to, "partition drop on %s traffic %d->%d", cat, from, to)
		return &Fault{Category: cat, Kind: FaultDrop}, 0
	}
	i.mu.RLock()
	rules := i.rules
	i.mu.RUnlock()
	for _, r := range rules {
		if r.Category != cat || r.Prob <= 0 {
			continue
		}
		if i.roll() >= r.Prob {
			continue
		}
		i.injected[cat][r.Kind].Add(1)
		switch r.Kind {
		case FaultDelay:
			delay += r.Delay
		default:
			obs.RecordEvent(obs.FlightFaultInject, to, "injected %s on %s traffic %d->%d", r.Kind, cat, from, to)
			return &Fault{Category: cat, Kind: r.Kind}, delay
		}
	}
	return nil, delay
}

// DecideDelay rolls only the delay rules for one message in cat. The
// infallible Send path cannot deliver drops or errors, so those rules (and
// partition cuts) are neither rolled nor counted there — only faults that
// actually reach the caller show up in the injected counters.
func (i *Injector) DecideDelay(cat Category) time.Duration {
	if i == nil {
		return 0
	}
	i.mu.RLock()
	rules := i.rules
	i.mu.RUnlock()
	var delay time.Duration
	for _, r := range rules {
		if r.Category != cat || r.Kind != FaultDelay || r.Prob <= 0 {
			continue
		}
		if i.roll() >= r.Prob {
			continue
		}
		i.injected[cat][FaultDelay].Add(1)
		delay += r.Delay
	}
	return delay
}

// InjectedCount returns how many faults of kind were injected in cat.
func (i *Injector) InjectedCount(cat Category, kind FaultKind) uint64 {
	if i == nil {
		return 0
	}
	return i.injected[cat][kind].Load()
}

// InjectedTotal sums all injected faults.
func (i *Injector) InjectedTotal() uint64 {
	if i == nil {
		return 0
	}
	var total uint64
	for c := range i.injected {
		for k := range i.injected[c] {
			total += i.injected[c][k].Load()
		}
	}
	return total
}

// Instrument registers dynamast_faults_injected_total{category,kind} in reg.
// Idempotent per injector.
func (i *Injector) Instrument(reg *obs.Registry) {
	if i == nil || reg == nil || !i.instrumented.CompareAndSwap(false, true) {
		return
	}
	reg.Help("dynamast_faults_injected_total", "Faults injected into the cluster wire by category and kind.")
	for _, cat := range Categories() {
		for k := FaultKind(0); k < numFaultKinds; k++ {
			c := &i.injected[cat][k]
			reg.Func("dynamast_faults_injected_total", obs.KindCounter,
				func() float64 { return float64(c.Load()) },
				obs.L("category", cat.String()), obs.L("kind", k.String()))
		}
	}
}

// ParseFaultSpec parses a comma-separated fault specification:
//
//	category:kind:prob[:delay]
//
// e.g. "remaster:drop:0.01,replication:delay:0.05:3ms,txn:error:0.002".
// Categories are the Category names (route, txn, remaster, replication,
// 2pc, shipping, control); kinds are drop, delay, error. Delay rules
// require the fourth field.
func ParseFaultSpec(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 3 {
			return nil, fmt.Errorf("transport: fault spec %q: want category:kind:prob[:delay]", part)
		}
		var r Rule
		cat, err := parseCategory(fields[0])
		if err != nil {
			return nil, fmt.Errorf("transport: fault spec %q: %w", part, err)
		}
		r.Category = cat
		switch fields[1] {
		case "drop":
			r.Kind = FaultDrop
		case "delay":
			r.Kind = FaultDelay
		case "error":
			r.Kind = FaultError
		default:
			return nil, fmt.Errorf("transport: fault spec %q: unknown kind %q", part, fields[1])
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("transport: fault spec %q: probability %q not in [0,1]", part, fields[2])
		}
		r.Prob = p
		if r.Kind == FaultDelay {
			if len(fields) < 4 {
				return nil, fmt.Errorf("transport: fault spec %q: delay rules need a duration", part)
			}
			d, err := time.ParseDuration(fields[3])
			if err != nil {
				return nil, fmt.Errorf("transport: fault spec %q: %w", part, err)
			}
			r.Delay = d
		} else if len(fields) > 3 {
			return nil, fmt.Errorf("transport: fault spec %q: trailing fields", part)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

func parseCategory(s string) (Category, error) {
	for _, c := range Categories() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown category %q", s)
}

// rpcRetries counts retried RPCs across the process (both the in-process
// remaster chains and the TCP client); Network.Instrument re-exports it as
// dynamast_rpc_retries_total.
var rpcRetries atomic.Uint64

// CountRetry records one RPC retry (retry counter + flight recorder).
func CountRetry() {
	rpcRetries.Add(1)
	obs.RecordEvent(obs.FlightRPCRetry, obs.SelectorSite, "rpc attempt retried")
}

// RPCRetries returns the process-wide retry count.
func RPCRetries() uint64 { return rpcRetries.Load() }
