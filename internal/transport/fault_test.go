package transport

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// Two injectors with the same seed, rules and call sequence must make
// identical decisions — chaos runs replay bit-for-bit.
func TestInjectorDeterministic(t *testing.T) {
	rules := []Rule{
		{Category: CatRemaster, Kind: FaultDrop, Prob: 0.2},
		{Category: CatRemaster, Kind: FaultDelay, Prob: 0.3, Delay: time.Millisecond},
		{Category: CatTxn, Kind: FaultError, Prob: 0.1},
	}
	run := func(seed int64) []string {
		inj := NewInjector(seed)
		inj.SetRules(rules...)
		var out []string
		for i := 0; i < 2000; i++ {
			cat := CatRemaster
			if i%3 == 0 {
				cat = CatTxn
			}
			err, d := inj.Decide(cat, 0, 1)
			switch {
			case err != nil:
				out = append(out, err.Error())
			case d > 0:
				out = append(out, "delay:"+d.String())
			default:
				out = append(out, "ok")
			}
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged under same seed: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 2000-decision streams")
	}
}

func TestInjectorProbabilityAndCounters(t *testing.T) {
	inj := NewInjector(7)
	inj.SetRules(Rule{Category: CatReplication, Kind: FaultDrop, Prob: 0.25})
	const n = 10000
	dropped := 0
	for i := 0; i < n; i++ {
		if err, _ := inj.Decide(CatReplication, 0, 1); err != nil {
			dropped++
			if !IsInjected(err) {
				t.Fatalf("injected fault not recognised by IsInjected: %v", err)
			}
			var f *Fault
			if !errors.As(err, &f) || f.Kind != FaultDrop || f.Category != CatReplication {
				t.Fatalf("wrong fault shape: %v", err)
			}
		}
	}
	if dropped < n/5 || dropped > n/3 {
		t.Fatalf("drop rate %d/%d far from 0.25", dropped, n)
	}
	if got := inj.InjectedCount(CatReplication, FaultDrop); got != uint64(dropped) {
		t.Fatalf("InjectedCount = %d, observed %d", got, dropped)
	}
	if got := inj.InjectedTotal(); got != uint64(dropped) {
		t.Fatalf("InjectedTotal = %d, observed %d", got, dropped)
	}
	// Other categories are untouched.
	if err, _ := inj.Decide(CatTxn, 0, 1); err != nil {
		t.Fatalf("rule leaked into other category: %v", err)
	}
}

func TestInjectorPartition(t *testing.T) {
	inj := NewInjector(1)
	inj.PartitionOneWay(2, SelectorNode)
	if !inj.Partitioned(2, SelectorNode) {
		t.Fatal("partition not recorded")
	}
	if err, _ := inj.Decide(CatControl, 2, SelectorNode); !IsInjected(err) {
		t.Fatalf("partitioned edge delivered: %v", err)
	}
	// Reverse direction is open (one-way).
	if err, _ := inj.Decide(CatControl, SelectorNode, 2); err != nil {
		t.Fatalf("reverse edge faulted: %v", err)
	}
	inj.Heal(2, SelectorNode)
	if err, _ := inj.Decide(CatControl, 2, SelectorNode); err != nil {
		t.Fatalf("healed edge still faulted: %v", err)
	}
	inj.PartitionOneWay(0, 1)
	inj.PartitionOneWay(1, 0)
	inj.HealAll()
	if inj.Partitioned(0, 1) || inj.Partitioned(1, 0) {
		t.Fatal("HealAll left partitions")
	}
}

func TestNetworkSendToSurfacesFaults(t *testing.T) {
	n := NewNetwork(Instant())
	inj := NewInjector(3)
	inj.SetRules(Rule{Category: CatRemaster, Kind: FaultError, Prob: 1})
	n.SetInjector(inj)
	if err := n.SendTo(CatRemaster, SelectorNode, 1, 64); !IsInjected(err) {
		t.Fatalf("SendTo did not surface fault: %v", err)
	}
	// Wire accounting still charged for the doomed message.
	if st := n.Stats()[CatRemaster]; st.Messages != 1 || st.Bytes != 64 {
		t.Fatalf("faulted message not accounted: %+v", st)
	}
	n.SetInjector(nil)
	if err := n.SendTo(CatRemaster, SelectorNode, 1, 64); err != nil {
		t.Fatalf("fault-free SendTo errored: %v", err)
	}
	// nil network is free and infallible.
	var nilNet *Network
	if err := nilNet.SendTo(CatTxn, 0, 1, 10); err != nil {
		t.Fatalf("nil network errored: %v", err)
	}
}

func TestParseFaultSpec(t *testing.T) {
	rules, err := ParseFaultSpec("remaster:drop:0.01,replication:delay:0.05:3ms, txn:error:0.002 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Category: CatRemaster, Kind: FaultDrop, Prob: 0.01},
		{Category: CatReplication, Kind: FaultDelay, Prob: 0.05, Delay: 3 * time.Millisecond},
		{Category: CatTxn, Kind: FaultError, Prob: 0.002},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{
		"bogus:drop:0.1",      // unknown category
		"txn:flip:0.1",        // unknown kind
		"txn:drop:1.5",        // probability out of range
		"txn:drop:x",          // unparseable probability
		"replication:delay:1", // delay without duration
		"txn:drop:0.1:5ms",    // trailing field on non-delay
		"txn:drop",            // too few fields
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
	// Empty spec and stray commas are fine.
	if rules, err := ParseFaultSpec(" , "); err != nil || len(rules) != 0 {
		t.Fatalf("empty spec: rules=%v err=%v", rules, err)
	}
}

func TestRPCCallTimeoutAndRetry(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	var calls atomic.Int32 // timed-out handler goroutines stay parked, overlapping retries
	Handle(srv, "slow", func(req *int) (*int, error) {
		if calls.Add(1) <= 2 {
			<-block // first two calls hang past the per-call timeout
		}
		resp := *req * 2
		return &resp, nil
	})
	Handle(srv, "apperr", func(req *int) (*int, error) {
		return nil, errors.New("definitive failure")
	})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)

	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	// Plain timeout surfaces ErrTimeout.
	var out int
	err = cli.CallTimeout("slow", 21, &out, 30*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	// Retries ride past the two hung calls and count each retry.
	before := RPCRetries()
	err = cli.CallRetry(context.Background(), "slow", 21, &out,
		RetryPolicy{Attempts: 4, PerCallTimeout: 30 * time.Millisecond, Base: time.Millisecond, MaxBackoff: 4 * time.Millisecond, Seed: 9})
	if err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if out != 42 {
		t.Fatalf("reply = %d, want 42", out)
	}
	if got := RPCRetries() - before; got < 1 {
		t.Fatalf("retries not counted: %d", got)
	}

	// Application errors are definitive — exactly one attempt.
	before = RPCRetries()
	err = cli.CallRetry(context.Background(), "apperr", 1, &out, DefaultRetryPolicy())
	if err == nil || errors.Is(err, ErrTimeout) {
		t.Fatalf("want application error, got %v", err)
	}
	if RPCRetries() != before {
		t.Fatal("application error was retried")
	}

	// Cancelled context ends the loop promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = cli.CallCtx(ctx, "slow", 1, &out)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("cancelled ctx: %v", err)
	}
}

func TestRPCRetryConnectionLost(t *testing.T) {
	// A client whose connection dies mid-call retries until attempts are
	// exhausted and reports the terminal error.
	srv := NewServer()
	Handle(srv, "never", func(req *int) (*int, error) {
		select {} // hold the call forever; we kill the conn instead
	})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cli.conn.(*net.TCPConn).Close()
	}()
	var out int
	err = cli.CallRetry(context.Background(), "never", 1, &out,
		RetryPolicy{Attempts: 2, PerCallTimeout: 50 * time.Millisecond, Base: time.Millisecond})
	if err == nil {
		t.Fatal("call against dead connection succeeded")
	}
}

// Send cannot deliver drops or errors (it is the legacy infallible path):
// they must be neither applied nor counted — only delays, which Send does
// honour — so the injected-fault counters reflect faults callers observed.
func TestSendCountsOnlyDeliveredFaults(t *testing.T) {
	n := NewNetwork(Instant())
	inj := NewInjector(3)
	inj.SetRules(
		Rule{Category: CatTxn, Kind: FaultDrop, Prob: 1},
		Rule{Category: CatTxn, Kind: FaultError, Prob: 1},
		Rule{Category: CatTxn, Kind: FaultDelay, Prob: 1, Delay: time.Microsecond},
	)
	n.SetInjector(inj)
	for i := 0; i < 10; i++ {
		n.Send(CatTxn, 8)
	}
	if got := inj.InjectedCount(CatTxn, FaultDrop); got != 0 {
		t.Fatalf("drop faults counted on the infallible Send path: %d", got)
	}
	if got := inj.InjectedCount(CatTxn, FaultError); got != 0 {
		t.Fatalf("error faults counted on the infallible Send path: %d", got)
	}
	if got := inj.InjectedCount(CatTxn, FaultDelay); got != 10 {
		t.Fatalf("delay faults = %d, want 10", got)
	}
}
