package transport

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"dynamast/internal/codec"
	"dynamast/internal/obs"
)

// TestUnsampledFrameByteIdentical pins the acceptance criterion that tracing
// costs zero bytes on unsampled frames: an untraced frame must encode
// byte-for-byte identically to the pre-tracing wire layout
// [codec header][flags][uvarint id][string method][opt err][body].
func TestUnsampledFrameByteIdentical(t *testing.T) {
	cases := []struct {
		name  string
		f     frame
		flags byte
	}{
		{"request", frame{ID: 7, Method: "txn", Body: []byte("payload")}, 0},
		{"response", frame{ID: 7, Method: "txn", Resp: true, Body: []byte{1, 2, 3}}, rpcFlagResp},
		{"error response", frame{ID: 9, Method: "grant", Resp: true, Err: "boom"}, rpcFlagResp | rpcFlagErr},
		{"empty body", frame{ID: 1, Method: "hb"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := appendFrame(nil, &tc.f)

			// The historical layout, hand-built from the codec primitives.
			want := codec.AppendHeader(nil, codec.Version1)
			want = append(want, tc.flags)
			want = codec.AppendUvarint(want, tc.f.ID)
			want = codec.AppendString(want, tc.f.Method)
			if tc.f.Err != "" {
				want = codec.AppendString(want, tc.f.Err)
			}
			want = append(want, tc.f.Body...)

			if !bytes.Equal(got, want) {
				t.Fatalf("unsampled frame not byte-identical to pre-tracing layout:\n got %x\nwant %x", got, want)
			}
		})
	}
}

func TestTracedFrameRoundTrip(t *testing.T) {
	in := frame{ID: 42, Method: "txn", Body: []byte("body"),
		Trace: 0xdeadbeefcafe, Span: 0x1234}
	buf := appendFrame(nil, &in)

	// The flags bit is the only gate: it must be set, and the frame must be
	// longer than its untraced twin by exactly the two uvarint ids.
	untraced := in
	untraced.Trace, untraced.Span = 0, 0
	plain := appendFrame(nil, &untraced)
	wantExtra := len(codec.AppendTraceContext(nil, in.Trace, in.Span))
	if len(buf) != len(plain)+wantExtra {
		t.Fatalf("traced frame is %d bytes, untraced %d: want exactly %d extra", len(buf), len(plain), wantExtra)
	}

	var out frame
	if err := decodeFrame(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Trace != in.Trace || out.Span != in.Span {
		t.Fatalf("trace context did not survive: got (%x, %x), want (%x, %x)",
			out.Trace, out.Span, in.Trace, in.Span)
	}
	if out.ID != in.ID || out.Method != in.Method || !bytes.Equal(out.Body, in.Body) {
		t.Fatalf("frame fields corrupted: %+v", out)
	}

	// Decoding an untraced frame leaves the context zero.
	var zero frame
	if err := decodeFrame(plain, &zero); err != nil {
		t.Fatal(err)
	}
	if zero.Trace != 0 || zero.Span != 0 {
		t.Fatalf("untraced frame decoded a context: (%x, %x)", zero.Trace, zero.Span)
	}
}

// TestCallTracedDeliversContext drives a real TCP round trip and asserts the
// server-side handler receives exactly the caller's SpanContext — and a zero
// context on the untraced path.
func TestCallTracedDeliversContext(t *testing.T) {
	srv := NewServer()
	var mu sync.Mutex
	var got []obs.SpanContext
	HandleTraced(srv, "echo", func(tc obs.SpanContext, req *struct{ N int }) (*struct{ N int }, error) {
		mu.Lock()
		got = append(got, tc)
		mu.Unlock()
		return &struct{ N int }{req.N + 1}, nil
	})
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	sc := obs.NewTraceContext()
	var resp struct{ N int }
	if err := cl.CallTraced(context.Background(), sc, "echo", &struct{ N int }{1}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.N != 2 {
		t.Fatalf("echo returned %d, want 2", resp.N)
	}
	if err := cl.Call("echo", &struct{ N int }{5}, &resp); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("handler saw %d calls, want 2", len(got))
	}
	if got[0] != sc {
		t.Fatalf("traced call delivered %+v, want %+v", got[0], sc)
	}
	if got[1].Sampled() {
		t.Fatalf("untraced call delivered a sampled context: %+v", got[1])
	}
}
