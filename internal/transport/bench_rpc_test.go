package transport

import (
	"bytes"
	"testing"

	"dynamast/internal/codec"
)

// benchBody mimics a transaction submission: a session id, a write-set-like
// ref list, and a value payload. benchBodyBin implements codec.Message so
// the binary path is used; benchBodyGob is field-identical but rides the
// gob fallback, giving the before/after comparison one build can measure.
type benchBodyBin struct {
	Client int64
	Tables []string
	Keys   []uint64
	Value  []byte
}

type benchBodyGob struct {
	Client int64
	Tables []string
	Keys   []uint64
	Value  []byte
}

func (m *benchBodyBin) MarshalTo(buf []byte) []byte {
	buf = codec.AppendHeader(buf, codec.Version1)
	buf = codec.AppendInt(buf, m.Client)
	buf = codec.AppendUvarint(buf, uint64(len(m.Tables)))
	for _, t := range m.Tables {
		buf = codec.AppendString(buf, t)
	}
	buf = codec.AppendUint64s(buf, m.Keys)
	return codec.AppendBytes(buf, m.Value)
}

func (m *benchBodyBin) Unmarshal(data []byte) error {
	r := codec.NewReader(data)
	m.Client = r.Int()
	m.Tables = nil
	if n := r.Uvarint(); n > 0 && r.Err() == nil {
		m.Tables = make([]string, n)
		for i := range m.Tables {
			m.Tables[i] = r.String()
			if r.Err() != nil {
				m.Tables = nil
				break
			}
		}
	}
	m.Keys = r.Uint64s()
	m.Value = r.Bytes()
	return r.Done()
}

func benchBodyFields() (int64, []string, []uint64, []byte) {
	return 42,
		[]string{"accounts", "orders"},
		[]uint64{100, 205, 317},
		bytes.Repeat([]byte{0xAB}, 128)
}

// BenchmarkRPCBodyEncodeDecode isolates body serialization round-trip
// (encode + decode, no network) in both formats.
func BenchmarkRPCBodyEncodeDecode(b *testing.B) {
	cl, tbl, keys, val := benchBodyFields()
	b.Run("binary", func(b *testing.B) {
		src := &benchBodyBin{Client: cl, Tables: tbl, Keys: keys, Value: val}
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf, _ = encodeBody(src, buf[:0])
			var dst benchBodyBin
			if err := decodeBody(buf, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gob", func(b *testing.B) {
		src := &benchBodyGob{Client: cl, Tables: tbl, Keys: keys, Value: val}
		var buf []byte
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = encodeBody(src, buf[:0])
			if err != nil {
				b.Fatal(err)
			}
			var dst benchBodyGob
			if err := decodeBody(buf, &dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRPCRoundTrip measures a full echo call over TCP loopback — frame
// encode, kernel round trip, frame decode, body decode — in both body
// formats. Network time dominates; the interesting columns are allocs/op
// and the binary-vs-gob delta.
func BenchmarkRPCRoundTrip(b *testing.B) {
	cl, tbl, keys, val := benchBodyFields()
	run := func(b *testing.B, method string, arg, reply any) {
		s := NewServer()
		Handle(s, "echo_bin", func(req *benchBodyBin) (*benchBodyBin, error) { return req, nil })
		Handle(s, "echo_gob", func(req *benchBodyGob) (*benchBodyGob, error) { return req, nil })
		addr, err := s.ListenAndServe("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		c, err := Dial(addr.String())
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Call(method, arg, reply); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("binary", func(b *testing.B) {
		arg := &benchBodyBin{Client: cl, Tables: tbl, Keys: keys, Value: val}
		run(b, "echo_bin", arg, &benchBodyBin{})
	})
	b.Run("gob", func(b *testing.B) {
		arg := &benchBodyGob{Client: cl, Tables: tbl, Keys: keys, Value: val}
		run(b, "echo_gob", arg, &benchBodyGob{})
	})
}

func TestBenchBodyRoundTrip(t *testing.T) {
	cl, tbl, keys, val := benchBodyFields()
	src := &benchBodyBin{Client: cl, Tables: tbl, Keys: keys, Value: val}
	buf, err := encodeBody(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var dst benchBodyBin
	if err := decodeBody(buf, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Client != src.Client || len(dst.Tables) != 2 || len(dst.Keys) != 3 || !bytes.Equal(dst.Value, src.Value) {
		t.Fatalf("round trip mismatch: %+v", dst)
	}
}
