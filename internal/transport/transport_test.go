package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

func TestNilNetworkIsFree(t *testing.T) {
	var n *Network
	start := time.Now()
	n.Send(CatTxn, 1<<20)
	n.RoundTrip(Cat2PC, 100, 100)
	n.Account(CatReplication, 5)
	n.Reset()
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("nil network slept")
	}
	for _, s := range n.Stats() {
		if s.Messages != 0 || s.Bytes != 0 {
			t.Fatalf("nil network accounted: %+v", s)
		}
	}
	if n.Config() != (Config{}) {
		t.Fatal("nil network config nonzero")
	}
}

func TestSendAccounting(t *testing.T) {
	n := NewNetwork(Instant())
	n.Send(CatRemaster, 100)
	n.Send(CatRemaster, 50)
	n.RoundTrip(Cat2PC, 10, 20)
	n.Account(CatReplication, 7)
	stats := n.Stats()
	byCat := map[Category]CategoryStats{}
	for _, s := range stats {
		byCat[s.Category] = s
	}
	if s := byCat[CatRemaster]; s.Messages != 2 || s.Bytes != 150 {
		t.Fatalf("remaster stats %+v", s)
	}
	if s := byCat[Cat2PC]; s.Messages != 2 || s.Bytes != 30 {
		t.Fatalf("2pc stats %+v", s)
	}
	if s := byCat[CatReplication]; s.Messages != 1 || s.Bytes != 7 {
		t.Fatalf("replication stats %+v", s)
	}
	n.Reset()
	for _, s := range n.Stats() {
		if s.Messages != 0 {
			t.Fatalf("Reset left %+v", s)
		}
	}
}

func TestSendLatency(t *testing.T) {
	n := NewNetwork(Config{OneWay: 20 * time.Millisecond})
	start := time.Now()
	n.Send(CatTxn, 10)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Send returned after %v, want >= 20ms", d)
	}
}

func TestTransferTimeBandwidth(t *testing.T) {
	n := NewNetwork(Config{BytesPerSecond: 1e6}) // 1 MB/s
	start := time.Now()
	n.Send(CatShipping, 20_000) // 20ms at 1MB/s
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("transfer time not charged: %v", d)
	}
	if n.transferTime(0) != 0 {
		t.Fatal("zero-size transfer has nonzero time")
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		CatRoute: "route", CatTxn: "txn", CatRemaster: "remaster",
		CatReplication: "replication", Cat2PC: "2pc", CatShipping: "shipping",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if Category(99).String() != "category(99)" {
		t.Error("unknown category string")
	}
	if len(Categories()) != int(numCategories) {
		t.Error("Categories() wrong length")
	}
}

func TestSizeEstimators(t *testing.T) {
	if SizeOfVector(vclock.New(4)) != 2+32 {
		t.Error("SizeOfVector")
	}
	refs := []storage.RowRef{{Table: "t", Key: 1}, {Table: "t", Key: 2}}
	if SizeOfRefs(refs) != 2+20 {
		t.Error("SizeOfRefs")
	}
	writes := []storage.Write{{Ref: refs[0], Data: make([]byte, 100)}}
	if SizeOfWrites(writes) != 2+10+3+100 {
		t.Error("SizeOfWrites")
	}
	rows := []storage.KV{{Key: 1, Value: make([]byte, 10)}}
	if SizeOfRows(rows) != 2+8+3+10 {
		t.Error("SizeOfRows")
	}
	if SizeOfPartitions([]uint64{1, 2, 3}) != 2+24 {
		t.Error("SizeOfPartitions")
	}
}

type echoReq struct{ Msg string }
type echoResp struct{ Msg string }

func startEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	Handle(s, "echo", func(r *echoReq) (*echoResp, error) {
		return &echoResp{Msg: r.Msg}, nil
	})
	Handle(s, "fail", func(r *echoReq) (*echoResp, error) {
		return nil, errors.New("boom: " + r.Msg)
	})
	Handle(s, "slow", func(r *echoReq) (*echoResp, error) {
		time.Sleep(30 * time.Millisecond)
		return &echoResp{Msg: "slow:" + r.Msg}, nil
	})
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

func TestRPCEcho(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call("echo", &echoReq{Msg: "hello"}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != "hello" {
		t.Fatalf("echo = %q", resp.Msg)
	}
}

func TestRPCErrorPropagation(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	err = c.Call("fail", &echoReq{Msg: "x"}, &resp)
	if err == nil || err.Error() != "boom: x" {
		t.Fatalf("err = %v", err)
	}
	err = c.Call("nosuch", &echoReq{}, &resp)
	if err == nil {
		t.Fatal("unknown method succeeded")
	}
}

func TestRPCConcurrentMultiplexing(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	start := time.Now()
	for i := 0; i < 10; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			if err := c.Call("slow", &echoReq{Msg: "a"}, &resp); err != nil {
				errs <- err
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			if err := c.Call("echo", &echoReq{Msg: "b"}, &resp); err != nil {
				errs <- err
			} else if resp.Msg != "b" {
				errs <- errors.New("wrong reply")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// 10 slow calls at 30ms each must overlap, not serialize (300ms).
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Fatalf("calls serialized: %v", d)
	}
}

func TestRPCNilReply(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("echo", &echoReq{Msg: "x"}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRPCClientCloseFailsInflight(t *testing.T) {
	_, addr := startEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		var resp echoResp
		done <- c.Call("slow", &echoReq{Msg: "x"}, &resp)
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call succeeded after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight call hung after Close")
	}
	if err := c.Call("echo", &echoReq{}, nil); err == nil {
		t.Fatal("Call after Close succeeded")
	}
}

func TestRPCServerClose(t *testing.T) {
	s := NewServer()
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", &echoReq{}, nil); err == nil {
		t.Fatal("call succeeded against closed server")
	}
}
