package systems

import (
	"sort"
	"time"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/twopc"
	"dynamast/internal/vclock"
)

// MultiMaster is the replicated multi-master architecture: master copies
// are statically partitioned across the sites (distributing the update
// load) and every site lazily maintains replicas of everything (so
// read-only transactions run anywhere). Write transactions whose write set
// spans multiple masters must run an expensive distributed commit (2PC),
// blocking conflicting local transactions during the uncertain phase
// (§II-A, Figure 1b).
type MultiMaster struct {
	*base
}

// NewMultiMaster builds a multi-master system with cfg.Placement as the
// static mastership assignment.
func NewMultiMaster(cfg BaseConfig) (*MultiMaster, error) {
	b, err := newBase(cfg, true, false)
	if err != nil {
		return nil, err
	}
	return &MultiMaster{base: b}, nil
}

// Name implements System.
func (s *MultiMaster) Name() string { return "multi-master" }

// Load implements System: rows replicated everywhere, mastership per the
// static placement.
func (s *MultiMaster) Load(rows []LoadRow) { s.loadReplicated(rows) }

// Stats implements System.
func (s *MultiMaster) Stats() Stats { return s.stats() }

// Close implements System.
func (s *MultiMaster) Close() { s.close() }

// NewClient implements System.
func (s *MultiMaster) NewClient(id int) Client {
	return &mmClient{sys: s, cvv: vclock.New(len(s.sites))}
}

type mmClient struct {
	sys *MultiMaster
	cvv vclock.Vector
}

// Update routes single-master-site write sets to a local transaction at
// that master; distributed write sets run 2PC across the owning sites.
func (c *mmClient) Update(writeSet []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	// All systems in the evaluation framework route transactions through
	// a selector/router component (§VI-A1).
	s.net.RoundTrip(transport.CatRoute, transport.MsgOverhead+transport.SizeOfRefs(writeSet), transport.MsgOverhead)
	owners := s.ownersOf(writeSet)
	if len(owners) <= 1 {
		site := 0
		for id := range owners {
			site = id
		}
		tvv, err := s.localTx(s.sites[site], c.cvv, writeSet, fn)
		if err != nil {
			return err
		}
		c.cvv = c.cvv.MaxInto(tvv)
		return nil
	}
	tvv, err := s.distributedTx(c.cvv, owners, fn, func(coord *sitemgr.Site) *bufferedTx {
		return &bufferedTx{site: coord, snap: coord.SVV()}
	})
	if err != nil {
		return err
	}
	c.cvv = c.cvv.MaxInto(tvv)
	return nil
}

// Read runs at any replica satisfying the session's freshness (the hint is
// unused: replicas hold everything).
func (c *mmClient) Read(hint []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	snap, err := s.readTx(s.sites[s.randFresh(c.cvv)], c.cvv, fn)
	if err != nil {
		return err
	}
	c.cvv = c.cvv.MaxInto(snap)
	return nil
}

// distributedTx executes a multi-site write transaction with 2PC under a
// 2PL-style lock discipline. The coordinating site is the owner of the
// largest share of the write set. Locks on the full distributed write set
// are acquired first (prepare phase), in ascending site order — a global
// acquisition order that makes concurrent distributed transactions
// deadlock-free, standing in for the deadlock detection a production 2PL
// system would run. The stored procedure then executes at the coordinator
// (against the local replica in multi-master; remote reads in
// partition-store, wired by the caller via mkTx), and the parallel commit
// phase installs each owner's writes. Locks are held from prepare through
// the global decision — the uncertain-phase blocking window.
func (b *base) distributedTx(cvv vclock.Vector, owners map[int][]storage.RowRef,
	fn func(Tx) error, mkTx func(coord *sitemgr.Site) *bufferedTx) (vclock.Vector, error) {
	b.distributed.Add(1)
	coordID, most := 0, -1
	ids := make([]int, 0, len(owners))
	for id, refs := range owners {
		ids = append(ids, id)
		if len(refs) > most {
			coordID, most = id, len(refs)
		}
	}
	sort.Ints(ids)
	coordSite := b.sites[coordID]
	coord := twopc.NewCoordinator(b.net)

	// Client -> coordinating site stored-procedure round trip (request).
	b.net.Send(transport.CatTxn, transport.MsgOverhead)
	if svv := b.sessionVV(cvv); len(svv) > 0 {
		coordSite.Clock().WaitDominatesEq(svv)
	}

	// Phase 1: acquire the distributed write locks in global site order.
	work := make(map[int]twopc.Work, len(owners))
	sites := make(map[int]twopc.Participant, len(owners))
	for id, refs := range owners {
		work[id] = twopc.Work{WriteSet: refs}
		sites[id] = b.sites[id]
	}
	txnID := coordSite.NextTxnID()
	var prepSnap vclock.Vector
	for _, id := range ids {
		snap, err := coord.Prepare(txnID, map[int]twopc.Work{id: work[id]},
			map[int]twopc.Participant{id: sites[id]})
		if err != nil {
			coord.Abort(txnID, work, sites)
			return nil, err
		}
		prepSnap = prepSnap.MaxInto(snap)
	}

	// In a replicated system the coordinator waits until its replica
	// reflects every participant's committed state for the locked records
	// (their prepare snapshots), so the execution reads current values.
	if b.replicated {
		coordSite.Clock().WaitDominatesEq(prepSnap)
	}

	// Phase 2: execute the stored procedure at the coordinator.
	tx := mkTx(coordSite)
	ferr := fn(tx)
	coordSite.Exec(func() time.Duration { return tx.cost(coordSite.Costs()) })
	if ferr != nil {
		coord.Abort(txnID, work, sites)
		return nil, ferr
	}

	// Phase 3: distribute the buffered writes and commit in parallel.
	for _, w := range tx.writes {
		owner := b.cfg.Placement(b.cfg.Partitioner(w.Ref))
		entry := work[owner]
		entry.Writes = append(entry.Writes, w)
		work[owner] = entry
	}
	tvv, err := coord.Commit(txnID, work, sites)
	if err != nil {
		return nil, err
	}
	b.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfVector(tvv))
	return tvv, nil
}

// bufferedTx executes a distributed transaction's logic at the coordinating
// site: reads and scans against the local snapshot, writes buffered for the
// 2PC decision phase.
type bufferedTx struct {
	site     *sitemgr.Site
	snap     vclock.Vector
	writes   []storage.Write
	nReads   int
	nScanned int

	// remote, when non-nil, redirects reads of non-local partitions
	// (partition-store, which has no replicas).
	remote func(ref storage.RowRef) ([]byte, bool, bool) // data, ok, handled
	// remoteScan, when non-nil, merges rows owned by other sites.
	remoteScan func(table string, lo, hi uint64) ([]storage.KV, bool)
}

func (t *bufferedTx) Read(ref storage.RowRef) ([]byte, bool) {
	t.nReads++
	// Own writes first.
	for i := len(t.writes) - 1; i >= 0; i-- {
		if t.writes[i].Ref == ref {
			if t.writes[i].Deleted {
				return nil, false
			}
			return t.writes[i].Data, true
		}
	}
	if t.remote != nil {
		if data, ok, handled := t.remote(ref); handled {
			return data, ok
		}
	}
	return t.site.Store().Get(ref, t.snap)
}

func (t *bufferedTx) Scan(table string, lo, hi uint64) []storage.KV {
	if t.remoteScan != nil {
		if rows, handled := t.remoteScan(table, lo, hi); handled {
			t.nScanned += len(rows)
			return rows
		}
	}
	tb := t.site.Store().Table(table)
	if tb == nil {
		return nil
	}
	rows := tb.Scan(lo, hi, t.snap)
	t.nScanned += len(rows)
	return rows
}

func (t *bufferedTx) Write(ref storage.RowRef, data []byte) error {
	t.writes = append(t.writes, storage.Write{Ref: ref, Data: data})
	return nil
}

func (t *bufferedTx) cost(cm sitemgr.CostModel) time.Duration {
	if cm.Zero() {
		return 0
	}
	return cm.TxnBase +
		time.Duration(t.nReads)*cm.PerRead +
		time.Duration(len(t.writes))*cm.PerWrite +
		time.Duration(t.nScanned)*cm.PerScanKey
}
