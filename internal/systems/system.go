// Package systems defines the common abstraction all five evaluated
// database architectures implement — DynaMast and the four comparators
// (single-master, multi-master, partition-store, LEAP) — so workloads and
// the benchmark harness are system-agnostic, mirroring the paper's
// methodology of implementing every alternative design within the DynaMast
// framework (§VI-A1).
package systems

import (
	"dynamast/internal/storage"
	"dynamast/internal/transport"
)

// Tx is the transaction handle a workload's stored procedure runs against.
// Reads and scans observe a snapshot consistent with the system's isolation
// level (strong-session snapshot isolation everywhere); writes must stay
// within the write set declared when the transaction was submitted.
type Tx interface {
	// Read returns a row's value, or ok=false if it does not exist.
	Read(ref storage.RowRef) ([]byte, bool)
	// Scan returns the visible rows of table with lo <= key < hi.
	Scan(table string, lo, hi uint64) []storage.KV
	// Write buffers an update to ref.
	Write(ref storage.RowRef, data []byte) error
}

// Client is one workload client's session against a system. Sessions are
// sticky: the system enforces strong-session snapshot isolation across a
// client's transactions. A Client is used by one goroutine at a time.
type Client interface {
	// Update executes fn as an update transaction whose write set is
	// writeSet, at a site of the system's choosing, and commits it.
	Update(writeSet []storage.RowRef, fn func(Tx) error) error
	// Read executes fn as a read-only transaction. hint optionally names
	// rows the transaction will read (reconnaissance, like the declared
	// write set); systems without replicas use it to execute the
	// transaction at the data's owner.
	Read(hint []storage.RowRef, fn func(Tx) error) error
}

// LoadRow is one initial-data row.
type LoadRow struct {
	Ref  storage.RowRef
	Data []byte
}

// Stats is a snapshot of system-level counters the experiments report.
type Stats struct {
	// Commits is the number of committed update transactions system-wide.
	Commits uint64
	// Remasters counts transactions that required mastership transfer
	// (DynaMast) or data shipping (LEAP).
	Remasters uint64
	// Distributed counts transactions that ran a distributed commit
	// protocol (partition-store, multi-master).
	Distributed uint64
	// PerSiteCommits break down commits by executing site.
	PerSiteCommits []uint64
	// Network is the per-category traffic snapshot.
	Network []transport.CategoryStats
}

// System is one evaluated database architecture.
type System interface {
	// Name identifies the system in experiment output.
	Name() string
	// CreateTable declares a table on every site.
	CreateTable(name string)
	// Load installs initial data according to the system's architecture
	// (replicated everywhere, or partitioned by its placement function).
	Load(rows []LoadRow)
	// NewClient opens a session for the given client id.
	NewClient(id int) Client
	// Stats snapshots system counters.
	Stats() Stats
	// Close shuts the system down.
	Close()
}
