package systems

import (
	"sort"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// PartitionStore is the partitioned multi-master architecture without
// replication: each partition lives only at its statically assigned site
// (range partitioning for YCSB, warehouse partitioning for TPC-C — the
// placements Schism found optimal, favouring this baseline). Distributed
// write sets run 2PC; reads of remote partitions are remote RPCs, and
// multi-partition read-only transactions fan out to the owning sites,
// paying straggler effects (§VI-A1, §VI-B2).
type PartitionStore struct {
	*base
}

// NewPartitionStore builds a partition-store with cfg.Placement as the
// static partitioning.
func NewPartitionStore(cfg BaseConfig) (*PartitionStore, error) {
	b, err := newBase(cfg, false, false)
	if err != nil {
		return nil, err
	}
	return &PartitionStore{base: b}, nil
}

// Name implements System.
func (s *PartitionStore) Name() string { return "partition-store" }

// Load implements System: rows live only at their owner site (replicated
// static tables excepted).
func (s *PartitionStore) Load(rows []LoadRow) { s.loadPartitioned(rows) }

// Stats implements System.
func (s *PartitionStore) Stats() Stats { return s.stats() }

// Close implements System.
func (s *PartitionStore) Close() { s.close() }

// NewClient implements System.
func (s *PartitionStore) NewClient(id int) Client {
	return &psClient{sys: s, cvv: vclock.New(len(s.sites))}
}

type psClient struct {
	sys *PartitionStore
	cvv vclock.Vector
}

// remoteRead serves a read of a row owned by another site: one RPC round
// trip to the owner.
func (b *base) remoteRead(execSite int, ref storage.RowRef) ([]byte, bool, bool) {
	owner := b.cfg.Placement(b.cfg.Partitioner(ref))
	if owner == execSite || b.cfg.ReplicatedTables[ref.Table] {
		return nil, false, false // local; not handled here
	}
	b.net.RoundTrip(transport.CatTxn, transport.MsgOverhead+10, transport.MsgOverhead)
	data, ok := b.sites[owner].ReadLocal(ref)
	// The remote sub-request consumes the owner's execution capacity.
	costs := b.sites[owner].Costs()
	b.sites[owner].Exec(func() timeDuration { return costs.TxnBase/2 + costs.PerRead })
	return data, ok, true
}

// fanoutScan serves a range scan whose partitions may span several owner
// sites: parallel per-site scans, waiting for the slowest (straggler
// effect). Handled is false when the whole range is local to execSite.
func (b *base) fanoutScan(execSite int, table string, lo, hi uint64) ([]storage.KV, bool) {
	if b.cfg.ReplicatedTables[table] {
		return nil, false
	}
	// Identify owner sites of the scanned partitions by probing the
	// partitioner over the key range boundaries of each partition; since
	// partitioners are range-based for scannable tables, sampling each
	// distinct partition in [lo, hi) suffices.
	ownerSet := make(map[int]struct{})
	seen := make(map[uint64]struct{})
	for k := lo; k < hi; k++ {
		p := b.cfg.Partitioner(storage.RowRef{Table: table, Key: k})
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		ownerSet[b.cfg.Placement(p)] = struct{}{}
	}
	if len(ownerSet) == 1 {
		if _, only := ownerSet[execSite]; only {
			return nil, false // fully local
		}
	}
	owners := make([]int, 0, len(ownerSet))
	for id := range ownerSet {
		owners = append(owners, id)
	}
	sort.Ints(owners)
	type result struct {
		rows []storage.KV
	}
	results := make(chan result, len(owners))
	for _, id := range owners {
		go func(id int) {
			site := b.sites[id]
			rows := site.ScanLocal(table, lo, hi)
			// Each sub-scan consumes its owner's execution capacity; the
			// caller waits for the slowest site (straggler effect).
			costs := site.Costs()
			site.Exec(func() timeDuration {
				return costs.TxnBase/2 + timeDuration(len(rows))*costs.PerScanKey
			})
			if id != execSite {
				b.net.RoundTrip(transport.CatTxn,
					transport.MsgOverhead, transport.MsgOverhead+transport.SizeOfRows(rows))
			}
			results <- result{rows}
		}(id)
	}
	var all []storage.KV
	for range owners {
		r := <-results
		all = append(all, r.rows...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	return all, true
}

// Update routes single-owner write sets to a local transaction; spanning
// write sets run 2PC. Reads inside update transactions that touch remote
// partitions become remote RPCs.
func (c *psClient) Update(writeSet []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	// Routed through the framework's selector/router component.
	s.net.RoundTrip(transport.CatRoute, transport.MsgOverhead+transport.SizeOfRefs(writeSet), transport.MsgOverhead)
	owners := s.ownersOf(writeSet)
	if len(owners) == 1 {
		var site int
		for id := range owners {
			site = id
		}
		tvv, err := s.localPartitionedTx(site, s.sessionVV(c.cvv), writeSet, fn)
		if err != nil {
			return err
		}
		c.cvv = c.cvv.MaxInto(tvv)
		return nil
	}
	tvv, err := s.distributedTx(c.cvv, owners, fn, func(coord *sitemgr.Site) *bufferedTx {
		tx := &bufferedTx{site: coord, snap: coord.SVV()}
		tx.remote = func(ref storage.RowRef) ([]byte, bool, bool) {
			return s.remoteRead(coord.ID(), ref)
		}
		tx.remoteScan = func(table string, lo, hi uint64) ([]storage.KV, bool) {
			return s.fanoutScan(coord.ID(), table, lo, hi)
		}
		return tx
	})
	if err != nil {
		return err
	}
	c.cvv = c.cvv.MaxInto(tvv)
	return nil
}

// localPartitionedTx is a single-owner update transaction that may still
// read remote partitions.
func (b *base) localPartitionedTx(siteID int, cvv vclock.Vector, writeSet []storage.RowRef, fn func(Tx) error) (vclock.Vector, error) {
	site := b.sites[siteID]
	b.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfRefs(writeSet))
	tx, err := site.Begin(cvv, writeSet)
	if err != nil {
		return nil, err
	}
	adapter := &partitionedLocalTx{tx: tx, b: b, execSite: siteID}
	ferr := fn(adapter)
	site.Exec(tx.Cost)
	if ferr != nil {
		tx.Abort()
		return nil, ferr
	}
	tvv, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	b.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfVector(tvv))
	return tvv, nil
}

// partitionedLocalTx wraps a local transaction with remote reads for
// partitions owned elsewhere.
type partitionedLocalTx struct {
	tx       *sitemgr.Txn
	b        *base
	execSite int
}

func (t *partitionedLocalTx) Read(ref storage.RowRef) ([]byte, bool) {
	if data, ok, handled := t.b.remoteRead(t.execSite, ref); handled {
		return data, ok
	}
	return t.tx.Read(ref)
}

func (t *partitionedLocalTx) Scan(table string, lo, hi uint64) []storage.KV {
	if rows, handled := t.b.fanoutScan(t.execSite, table, lo, hi); handled {
		return rows
	}
	return t.tx.Scan(table, lo, hi)
}

func (t *partitionedLocalTx) Write(ref storage.RowRef, data []byte) error {
	return t.tx.Write(ref, data)
}

// Read executes a read-only transaction at the site owning the hinted
// rows (reads and scans of other partitions reach across and wait for the
// slowest site); without a hint a random site coordinates.
func (c *psClient) Read(hint []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	siteID := s.randSite()
	if len(hint) > 0 {
		siteID = s.cfg.Placement(s.cfg.Partitioner(hint[0]))
	}
	site := s.sites[siteID]
	s.net.RoundTrip(transport.CatRoute, transport.MsgOverhead, transport.MsgOverhead)
	s.net.Send(transport.CatTxn, transport.MsgOverhead)
	tx, err := site.Begin(nil, nil)
	if err != nil {
		return err
	}
	adapter := &partitionedLocalTx{tx: tx, b: s.base, execSite: siteID}
	ferr := fn(adapter)
	site.Exec(tx.Cost)
	if ferr != nil {
		tx.Abort()
		return ferr
	}
	_, err = tx.Commit()
	s.net.Send(transport.CatTxn, transport.MsgOverhead)
	return err
}
