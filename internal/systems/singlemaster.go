package systems

import (
	"dynamast/internal/storage"
	"dynamast/internal/vclock"
)

// SingleMaster is the replicated single-master architecture: one site
// masters every data item and executes all update transactions; the
// remaining sites hold lazily maintained read-only replicas that serve
// read-only transactions. It avoids distributed transactions entirely but
// the master site becomes the bottleneck as the update load scales (§II-A).
type SingleMaster struct {
	*base
	master int
}

// NewSingleMaster builds a single-master system; site 0 is the master.
// Any Placement in cfg is overridden.
func NewSingleMaster(cfg BaseConfig) (*SingleMaster, error) {
	cfg.Placement = func(uint64) int { return 0 }
	b, err := newBase(cfg, true, false)
	if err != nil {
		return nil, err
	}
	return &SingleMaster{base: b, master: 0}, nil
}

// Name implements System.
func (s *SingleMaster) Name() string { return "single-master" }

// Load implements System: data replicated everywhere, all mastership at
// the master.
func (s *SingleMaster) Load(rows []LoadRow) { s.loadReplicated(rows) }

// Stats implements System.
func (s *SingleMaster) Stats() Stats { return s.stats() }

// Close implements System.
func (s *SingleMaster) Close() { s.close() }

// NewClient implements System.
func (s *SingleMaster) NewClient(id int) Client {
	return &smClient{sys: s, cvv: vclock.New(len(s.sites))}
}

type smClient struct {
	sys *SingleMaster
	cvv vclock.Vector
}

// Update executes at the master site; clients connect to it directly, so a
// write transaction costs a single stored-procedure round trip — but every
// client's updates queue on the one master.
func (c *smClient) Update(writeSet []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	tvv, err := s.localTx(s.sites[s.master], c.cvv, writeSet, fn)
	if err != nil {
		return err
	}
	c.cvv = c.cvv.MaxInto(tvv)
	return nil
}

// Read executes at a random replica satisfying the session's freshness,
// offloading the master (what makes single-master superior to a fully
// centralized system).
func (c *smClient) Read(hint []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	snap, err := s.readTx(s.sites[s.randFresh(c.cvv)], c.cvv, fn)
	if err != nil {
		return err
	}
	c.cvv = c.cvv.MaxInto(snap)
	return nil
}
