package systems

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dynamast/internal/storage"
	"dynamast/internal/transport"
)

func partitionBy100(ref storage.RowRef) uint64 { return ref.Key / 100 }

func ref(key uint64) storage.RowRef { return storage.RowRef{Table: "kv", Key: key} }

// rangePlacement spreads partitions round-robin (the oracle range
// partitioning for a uniform keyspace over m sites).
func rangePlacement(m int) func(uint64) int {
	return func(part uint64) int { return int(part) % m }
}

func baseCfg(m int) BaseConfig {
	return BaseConfig{
		Sites:       m,
		Partitioner: partitionBy100,
		Placement:   rangePlacement(m),
	}
}

// makeSystems builds one instance of every baseline over the same初 data.
func loadRows(n uint64) []LoadRow {
	rows := make([]LoadRow, 0, n)
	for k := uint64(0); k < n; k++ {
		rows = append(rows, LoadRow{Ref: ref(k), Data: []byte{byte(k)}})
	}
	return rows
}

func eachBaseline(t *testing.T, m int, fn func(t *testing.T, sys System)) {
	t.Helper()
	builders := []struct {
		name  string
		build func() (System, error)
	}{
		{"single-master", func() (System, error) { return NewSingleMaster(baseCfg(m)) }},
		{"multi-master", func() (System, error) { return NewMultiMaster(baseCfg(m)) }},
		{"partition-store", func() (System, error) { return NewPartitionStore(baseCfg(m)) }},
		{"leap", func() (System, error) { return NewLEAP(baseCfg(m)) }},
	}
	for _, b := range builders {
		b := b
		t.Run(b.name, func(t *testing.T) {
			sys, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			sys.CreateTable("kv")
			sys.Load(loadRows(1000))
			fn(t, sys)
		})
	}
}

func TestBaselinesUpdateAndReadOwnWrite(t *testing.T) {
	eachBaseline(t, 3, func(t *testing.T, sys System) {
		cl := sys.NewClient(1)
		if err := cl.Update([]storage.RowRef{ref(5)}, func(tx Tx) error {
			return tx.Write(ref(5), []byte("updated"))
		}); err != nil {
			t.Fatal(err)
		}
		if err := cl.Read(nil, func(tx Tx) error {
			data, ok := tx.Read(ref(5))
			if !ok || string(data) != "updated" {
				return fmt.Errorf("read-own-write: %q %v", data, ok)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := sys.Stats().Commits; got != 1 {
			t.Fatalf("commits = %d", got)
		}
	})
}

func TestBaselinesCrossPartitionUpdate(t *testing.T) {
	eachBaseline(t, 3, func(t *testing.T, sys System) {
		cl := sys.NewClient(1)
		// Partitions 0,1,2 live at sites 0,1,2 under range placement — a
		// three-partition write set spans all three.
		ws := []storage.RowRef{ref(10), ref(110), ref(210)}
		if err := cl.Update(ws, func(tx Tx) error {
			for i, r := range ws {
				if err := tx.Write(r, []byte{byte(100 + i)}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := cl.Read(nil, func(tx Tx) error {
			for i, r := range ws {
				data, ok := tx.Read(r)
				if !ok || data[0] != byte(100+i) {
					return fmt.Errorf("key %d: %v %v", r.Key, data, ok)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		st := sys.Stats()
		switch sys.Name() {
		case "multi-master", "partition-store":
			if st.Distributed != 1 {
				t.Fatalf("distributed = %d, want 1", st.Distributed)
			}
		case "leap":
			if st.Remasters == 0 {
				t.Fatal("LEAP performed no localization")
			}
			if st.Distributed != 0 {
				t.Fatal("LEAP ran a distributed transaction")
			}
		case "single-master":
			if st.Distributed != 0 || st.Remasters != 0 {
				t.Fatalf("single-master stats = %+v", st)
			}
		}
	})
}

func TestBaselinesReadModifyWriteAtomicity(t *testing.T) {
	// Concurrent cross-partition increments must not lose updates in any
	// system: multi-master/partition-store hold 2PC locks through the
	// uncertain phase; LEAP serializes via ownership; single-master
	// serializes at the master.
	eachBaseline(t, 3, func(t *testing.T, sys System) {
		const clients, iters = 4, 10
		ws := []storage.RowRef{ref(10), ref(110)}
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl := sys.NewClient(c)
				for i := 0; i < iters; i++ {
					err := cl.Update(ws, func(tx Tx) error {
						for _, r := range ws {
							cur, ok := tx.Read(r)
							if !ok {
								return fmt.Errorf("missing counter %v", r)
							}
							n := byte(0)
							if len(cur) > 0 {
								n = cur[len(cur)-1]
							}
							if err := tx.Write(r, []byte{n + 1}); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		// Allow replication to quiesce, then audit the counters.
		time.Sleep(50 * time.Millisecond)
		cl := sys.NewClient(99)
		deadline := time.Now().Add(5 * time.Second)
		for {
			var vals [2]byte
			err := cl.Read(nil, func(tx Tx) error {
				for i, r := range ws {
					data, ok := tx.Read(r)
					if !ok {
						return fmt.Errorf("counter %v missing", r)
					}
					vals[i] = data[len(data)-1]
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			// Loaded counters start at byte(key): 10 and 110.
			want := [2]byte{10 + clients*iters, 110 + clients*iters}
			if vals == want {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("counters = %v, want %v (lost updates)", vals, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

func TestBaselinesScans(t *testing.T) {
	eachBaseline(t, 3, func(t *testing.T, sys System) {
		cl := sys.NewClient(1)
		if err := cl.Read(nil, func(tx Tx) error {
			// The range 150..450 spans partitions 1..4 (sites 1,2,0,1).
			rows := tx.Scan("kv", 150, 450)
			if len(rows) != 300 {
				return fmt.Errorf("scan returned %d rows, want 300", len(rows))
			}
			for i, kv := range rows {
				if kv.Key != 150+uint64(i) {
					return fmt.Errorf("row %d key %d out of order", i, kv.Key)
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSingleMasterAllCommitsAtMaster(t *testing.T) {
	sys, err := NewSingleMaster(baseCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(1000))
	for c := 0; c < 3; c++ {
		cl := sys.NewClient(c)
		for i := 0; i < 5; i++ {
			k := uint64(c*300 + i)
			if err := cl.Update([]storage.RowRef{ref(k)}, func(tx Tx) error {
				return tx.Write(ref(k), []byte("x"))
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := sys.Stats()
	if st.PerSiteCommits[0] != 15 || st.PerSiteCommits[1] != 0 || st.PerSiteCommits[2] != 0 {
		t.Fatalf("per-site commits = %v", st.PerSiteCommits)
	}
}

func TestMultiMasterSingleSiteFastPath(t *testing.T) {
	sys, err := NewMultiMaster(baseCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(1000))
	cl := sys.NewClient(1)
	// Write set within partition 1 (site 1): local, no 2PC.
	if err := cl.Update([]storage.RowRef{ref(110), ref(120)}, func(tx Tx) error {
		return tx.Write(ref(110), []byte("x"))
	}); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Distributed != 0 {
		t.Fatal("single-site write set ran 2PC")
	}
	if st.PerSiteCommits[1] != 1 {
		t.Fatalf("per-site commits = %v", st.PerSiteCommits)
	}
}

func TestPartitionStoreRemoteReadCharged(t *testing.T) {
	cfg := baseCfg(2)
	cfg.Network = transport.Config{OneWay: time.Millisecond}
	sys, err := NewPartitionStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(300))
	cl := sys.NewClient(1)
	// Update at partition 0 (site 0) that reads partition 1 (site 1).
	start := time.Now()
	err = cl.Update([]storage.RowRef{ref(10)}, func(tx Tx) error {
		if _, ok := tx.Read(ref(110)); !ok {
			return fmt.Errorf("remote read failed")
		}
		return tx.Write(ref(10), []byte("x"))
	})
	if err != nil {
		t.Fatal(err)
	}
	// 1 txn RT + 1 remote-read RT >= 4ms.
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Fatalf("latency %v too low for a remote read", d)
	}
}

func TestPartitionStoreDataOnlyAtOwner(t *testing.T) {
	sys, err := NewPartitionStore(baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(200))
	// Partition 0 -> site 0, partition 1 -> site 1; no replication.
	ps := sys.base
	if _, ok := ps.sites[1].ReadLocal(ref(10)); ok {
		t.Fatal("site 1 holds partition 0's data")
	}
	if _, ok := ps.sites[0].ReadLocal(ref(110)); ok {
		t.Fatal("site 0 holds partition 1's data")
	}
}

func TestReplicatedTablesLoadedEverywhere(t *testing.T) {
	cfg := baseCfg(2)
	cfg.ReplicatedTables = map[string]bool{"static": true}
	sys, err := NewPartitionStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.CreateTable("static")
	sys.Load([]LoadRow{
		{Ref: storage.RowRef{Table: "static", Key: 110}, Data: []byte("s")},
		{Ref: ref(110), Data: []byte("d")},
	})
	for i, s := range sys.base.sites {
		if _, _, ok := s.Store().Table("static").GetLatest(110); !ok {
			t.Fatalf("site %d missing replicated static row", i)
		}
	}
}

func TestLEAPLocalizationMovesOwnership(t *testing.T) {
	sys, err := NewLEAP(baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(300))

	cl := sys.NewClient(0)
	// The client's home pins to its first write's owner (partition 0 ->
	// site 0); partition 1 starts at site 1, so the update pulls it over.
	if err := cl.Update([]storage.RowRef{ref(10), ref(110)}, func(tx Tx) error {
		return tx.Write(ref(110), []byte("pulled"))
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.ownerOf(1); got != 0 {
		t.Fatalf("partition 1 owner = %d, want 0", got)
	}
	if sys.Stats().Remasters == 0 {
		t.Fatal("no localization recorded")
	}
	// The data physically moved.
	if data, ok := sys.base.sites[0].ReadLocal(ref(110)); !ok || string(data) != "pulled" {
		t.Fatalf("site 0 read after pull: %q %v", data, ok)
	}
}

func TestLEAPPingPong(t *testing.T) {
	// Two clients homed at different sites alternately touching the same
	// partition force repeated shipping — the ping-pong the paper blames
	// for LEAP's tail latency.
	sys, err := NewLEAP(baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(300))
	c0, c1 := sys.NewClient(0), sys.NewClient(1)
	// Pin the clients' homes to different sites via their first writes
	// (partition 0 -> site 0, partition 1 -> site 1).
	if err := c0.Update([]storage.RowRef{ref(10)}, func(tx Tx) error {
		return tx.Write(ref(10), []byte("pin"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Update([]storage.RowRef{ref(110)}, func(tx Tx) error {
		return tx.Write(ref(110), []byte("pin"))
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c0.Update([]storage.RowRef{ref(210)}, func(tx Tx) error {
			return tx.Write(ref(210), []byte{byte(2 * i)})
		}); err != nil {
			t.Fatal(err)
		}
		if err := c1.Update([]storage.RowRef{ref(210)}, func(tx Tx) error {
			cur, ok := tx.Read(ref(210))
			if !ok || cur[0] != byte(2*i) {
				return fmt.Errorf("iter %d: stale data after ship: %v %v", i, cur, ok)
			}
			return tx.Write(ref(210), []byte{byte(2*i + 1)})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.Stats().Remasters; got < 9 {
		t.Fatalf("localizations = %d, want >= 9 (ping-pong)", got)
	}
}

func TestLEAPScanLocalizes(t *testing.T) {
	sys, err := NewLEAP(baseCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.CreateTable("kv")
	sys.Load(loadRows(300))
	cl := sys.NewClient(0)
	if err := cl.Read(nil, func(tx Tx) error {
		rows := tx.Scan("kv", 100, 250) // partitions 1 (site 1) and 2 (site 0)
		if len(rows) != 150 {
			return fmt.Errorf("scan rows = %d", len(rows))
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sys.ownerOf(1); got != 0 {
		t.Fatalf("scan did not localize partition 1 (owner %d)", got)
	}
}

func TestUpdateFnErrorAbortsEverywhere(t *testing.T) {
	eachBaseline(t, 3, func(t *testing.T, sys System) {
		cl := sys.NewClient(1)
		boom := fmt.Errorf("boom")
		err := cl.Update([]storage.RowRef{ref(10), ref(110)}, func(tx Tx) error {
			tx.Write(ref(10), []byte("junk"))
			return boom
		})
		if err == nil {
			t.Fatal("error swallowed")
		}
		if err := cl.Read(nil, func(tx Tx) error {
			if data, _ := tx.Read(ref(10)); string(data) == "junk" {
				return fmt.Errorf("aborted write visible")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		// Locks released: the same write set succeeds afterwards.
		if err := cl.Update([]storage.RowRef{ref(10), ref(110)}, func(tx Tx) error {
			return tx.Write(ref(10), []byte("good"))
		}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBaseConfigValidation(t *testing.T) {
	if _, err := NewMultiMaster(BaseConfig{Partitioner: partitionBy100}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := NewLEAP(BaseConfig{Sites: 2}); err == nil {
		t.Error("missing partitioner accepted")
	}
}
