package systems

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
	"dynamast/internal/wal"
)

// BaseConfig describes the substrate shared by the four baseline systems.
// Every baseline runs on the same data sites, storage engine, MVCC scheme
// and isolation level as DynaMast (§VI-A1).
type BaseConfig struct {
	// Sites is the number of data sites.
	Sites int
	// Partitioner maps rows to partitions; required.
	Partitioner sitemgr.Partitioner
	// Placement statically assigns partitions to sites (range partitioning
	// for YCSB, warehouse partitioning for TPC-C — the oracle placements
	// Schism confirmed optimal). nil assigns everything to site 0.
	Placement func(part uint64) int
	// ReplicatedTables lists static read-only tables that partitioned
	// systems replicate to every site (e.g. TPC-C's item table).
	ReplicatedTables map[string]bool
	// Network configures the simulated wire.
	Network transport.Config
	// ExecSlots and Costs configure the sites' execution capacity model.
	ExecSlots int
	Costs     sitemgr.CostModel
	// MaxVersions caps record version chains.
	MaxVersions int
	// Seed drives read-routing randomization.
	Seed int64
}

// base is the shared implementation: a broker, m data sites, placement
// metadata and counters.
type base struct {
	cfg        BaseConfig
	net        *transport.Network
	broker     *wal.Broker
	sites      []*sitemgr.Site
	replicated bool

	rngMu sync.Mutex
	rng   *rand.Rand

	remasters   atomic.Uint64
	distributed atomic.Uint64
}

// newBase builds the shared substrate. replicate controls whether sites
// maintain lazy replicas (multi-master, single-master) or not
// (partition-store, LEAP); trackRows enables the per-partition row index
// that data shipping needs.
func newBase(cfg BaseConfig, replicate, trackRows bool) (*base, error) {
	if cfg.Sites <= 0 {
		return nil, fmt.Errorf("systems: Sites must be positive")
	}
	if cfg.Partitioner == nil {
		return nil, fmt.Errorf("systems: config requires a Partitioner")
	}
	if cfg.Placement == nil {
		cfg.Placement = func(uint64) int { return 0 }
	}
	b := &base{
		cfg:        cfg,
		net:        transport.NewNetwork(cfg.Network),
		broker:     wal.NewBroker(cfg.Sites),
		replicated: replicate,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
	b.sites = make([]*sitemgr.Site, cfg.Sites)
	for i := 0; i < cfg.Sites; i++ {
		s, err := sitemgr.New(sitemgr.Config{
			SiteID:             i,
			Sites:              cfg.Sites,
			Net:                b.net,
			Broker:             b.broker,
			MaxVersions:        cfg.MaxVersions,
			Partitioner:        cfg.Partitioner,
			Replicate:          replicate,
			ExecSlots:          cfg.ExecSlots,
			Costs:              cfg.Costs,
			DefaultOwner:       cfg.Placement,
			TrackPartitionRows: trackRows,
		})
		if err != nil {
			b.broker.Close()
			return nil, err
		}
		b.sites[i] = s
	}
	for _, s := range b.sites {
		s.Start()
	}
	return b, nil
}

func (b *base) CreateTable(name string) {
	for _, s := range b.sites {
		s.Store().CreateTable(name)
	}
}

// loadReplicated installs rows on every site; placement decides mastership.
func (b *base) loadReplicated(rows []LoadRow) {
	loadStamp := storage.Stamp{Origin: 0, Seq: 0}
	seen := make(map[uint64]struct{})
	for _, row := range rows {
		part := b.cfg.Partitioner(row.Ref)
		if _, ok := seen[part]; !ok {
			seen[part] = struct{}{}
			owner := b.cfg.Placement(part)
			for i, s := range b.sites {
				s.SetMaster(part, i == owner)
			}
		}
		for _, s := range b.sites {
			t := s.Store().CreateTable(row.Ref.Table)
			t.Record(row.Ref.Key, true).Install(loadStamp, row.Data, false, s.Store().MaxVersions())
		}
	}
}

// loadPartitioned installs each row only at its partition's owner site,
// except rows of replicated (static read-only) tables, which go everywhere.
func (b *base) loadPartitioned(rows []LoadRow) {
	loadStamp := storage.Stamp{Origin: 0, Seq: 0}
	seen := make(map[uint64]struct{})
	for _, row := range rows {
		part := b.cfg.Partitioner(row.Ref)
		owner := b.cfg.Placement(part)
		if _, ok := seen[part]; !ok {
			seen[part] = struct{}{}
			for i, s := range b.sites {
				s.SetMaster(part, i == owner)
			}
		}
		if b.cfg.ReplicatedTables[row.Ref.Table] {
			for _, s := range b.sites {
				t := s.Store().CreateTable(row.Ref.Table)
				t.Record(row.Ref.Key, true).Install(loadStamp, row.Data, false, s.Store().MaxVersions())
			}
			continue
		}
		b.sites[owner].LoadRow(row.Ref, row.Data)
	}
}

func (b *base) stats() Stats {
	st := Stats{
		Remasters:      b.remasters.Load(),
		Distributed:    b.distributed.Load(),
		PerSiteCommits: make([]uint64, len(b.sites)),
		Network:        b.net.Stats(),
	}
	for i, s := range b.sites {
		st.PerSiteCommits[i] = s.Commits()
		st.Commits += s.Commits()
	}
	return st
}

func (b *base) close() {
	b.broker.Close()
	for _, s := range b.sites {
		s.Stop()
	}
}

// Network exposes the simulated network (experiments read traffic stats).
func (b *base) Network() *transport.Network { return b.net }

// randSite picks a uniformly random site.
func (b *base) randSite() int {
	b.rngMu.Lock()
	defer b.rngMu.Unlock()
	return b.rng.Intn(len(b.sites))
}

// randFresh picks a random site whose vector dominates cvv, or the least
// lagged site if none does.
func (b *base) randFresh(cvv vclock.Vector) int {
	fresh := make([]int, 0, len(b.sites))
	bestLag, bestSite := uint64(1)<<63, 0
	for i, s := range b.sites {
		svv := s.SVV()
		if svv.DominatesEq(cvv) {
			fresh = append(fresh, i)
			continue
		}
		if lag := svv.LagBehind(cvv); lag < bestLag {
			bestLag, bestSite = lag, i
		}
	}
	if len(fresh) == 0 {
		return bestSite
	}
	b.rngMu.Lock()
	defer b.rngMu.Unlock()
	return fresh[b.rng.Intn(len(fresh))]
}

// partsOf returns the deduplicated partitions of a write set grouped by
// their owning site under the static placement.
func (b *base) ownersOf(writeSet []storage.RowRef) map[int][]storage.RowRef {
	owners := make(map[int][]storage.RowRef)
	for _, ref := range writeSet {
		owner := b.cfg.Placement(b.cfg.Partitioner(ref))
		owners[owner] = append(owners[owner], ref)
	}
	return owners
}

// localTx runs a single-site update transaction at site: one stored-
// procedure round trip, execution-pool charging, commit. It returns the
// commit vector.
func (b *base) localTx(site *sitemgr.Site, minVV vclock.Vector, writeSet []storage.RowRef, fn func(Tx) error) (vclock.Vector, error) {
	b.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfRefs(writeSet))
	tx, err := site.Begin(minVV, writeSet)
	if err != nil {
		return nil, err
	}
	// Run the logic, then charge its modelled CPU through the site's
	// execution slots — the engine does not hold a core while a
	// transaction blocks on the network.
	ferr := fn(siteTx{tx})
	site.Exec(tx.Cost)
	if ferr != nil {
		tx.Abort()
		return nil, ferr
	}
	tvv, err := tx.Commit()
	if err != nil {
		return nil, err
	}
	b.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfVector(tvv))
	return tvv, nil
}

// readTx runs a read-only transaction at site: a routing round trip (every
// replicated system picks a session-fresh replica using cluster metadata a
// client cannot hold locally), then one stored-procedure round trip with
// execution-pool charging. It returns the observed snapshot.
func (b *base) readTx(site *sitemgr.Site, cvv vclock.Vector, fn func(Tx) error) (vclock.Vector, error) {
	b.net.RoundTrip(transport.CatRoute, transport.MsgOverhead+transport.SizeOfVector(cvv), transport.MsgOverhead)
	b.net.Send(transport.CatTxn, transport.MsgOverhead)
	tx, err := site.Begin(cvv, nil)
	if err != nil {
		return nil, err
	}
	// Run the logic, then charge its modelled CPU through the site's
	// execution slots — the engine does not hold a core while a
	// transaction blocks on the network.
	ferr := fn(siteTx{tx})
	site.Exec(tx.Cost)
	if ferr != nil {
		tx.Abort()
		return nil, ferr
	}
	snap := tx.Snapshot()
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	b.net.Send(transport.CatTxn, transport.MsgOverhead)
	return snap, nil
}

// siteTx adapts *sitemgr.Txn to the Tx interface.
type siteTx struct{ tx *sitemgr.Txn }

func (a siteTx) Read(ref storage.RowRef) ([]byte, bool) { return a.tx.Read(ref) }
func (a siteTx) Scan(table string, lo, hi uint64) []storage.KV {
	return a.tx.Scan(table, lo, hi)
}
func (a siteTx) Write(ref storage.RowRef, data []byte) error { return a.tx.Write(ref, data) }

// timeDuration aliases time.Duration for brevity in adapter closures.
type timeDuration = time.Duration

// sessionVV returns the session-freshness vector a site must dominate
// before a client's transaction begins. In non-replicated systems
// (partition-store, LEAP) each data item has a single physical copy, so a
// client's session state is trivially current at the owning site and no
// wait applies — remote dimensions of a non-replicated site's clock never
// advance, so waiting on them would block forever.
func (b *base) sessionVV(cvv vclock.Vector) vclock.Vector {
	if !b.replicated {
		return nil
	}
	return cvv
}
