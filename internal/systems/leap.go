package systems

import (
	"fmt"
	"sync"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/transport"
	"dynamast/internal/vclock"
)

// LEAP guarantees single-site transaction execution like DynaMast, but on a
// partitioned multi-master store without replication: before a transaction
// runs, every partition in its read and write sets is *localized* to the
// execution site by physically shipping the records from their current
// owner (data shipping), with ownership moving along. LEAP has no routing
// strategies, so hot data ping-pongs between sites and read-only
// transactions also pay localization (§VI-A1, [14]).
type LEAP struct {
	*base

	// owner tracks each partition's current location; per-partition
	// mutexes serialize competing localizations.
	omu    sync.Mutex
	owner  map[uint64]int
	plocks map[uint64]*sync.Mutex
}

// NewLEAP builds a LEAP system with cfg.Placement as the initial
// partitioning.
func NewLEAP(cfg BaseConfig) (*LEAP, error) {
	b, err := newBase(cfg, false, true)
	if err != nil {
		return nil, err
	}
	return &LEAP{
		base:   b,
		owner:  make(map[uint64]int),
		plocks: make(map[uint64]*sync.Mutex),
	}, nil
}

// Name implements System.
func (s *LEAP) Name() string { return "leap" }

// Load implements System.
func (s *LEAP) Load(rows []LoadRow) { s.loadPartitioned(rows) }

// Stats implements System.
func (s *LEAP) Stats() Stats { return s.stats() }

// Close implements System.
func (s *LEAP) Close() { s.close() }

// NewClient implements System. Lacking routing strategies, LEAP pins each
// client to a home site on first touch — the site owning the client's
// first written partition (execute where the data starts; the data then
// follows the client) — and localizes whatever its transactions touch.
func (s *LEAP) NewClient(id int) Client {
	return &leapClient{sys: s, home: -1, fallback: id % len(s.sites), cvv: vclock.New(len(s.sites))}
}

// ownerOf returns the partition's current location.
func (s *LEAP) ownerOf(part uint64) int {
	s.omu.Lock()
	defer s.omu.Unlock()
	if o, ok := s.owner[part]; ok {
		return o
	}
	o := s.cfg.Placement(part)
	s.owner[part] = o
	return o
}

// plock returns the partition's localization mutex.
func (s *LEAP) plock(part uint64) *sync.Mutex {
	s.omu.Lock()
	defer s.omu.Unlock()
	if m, ok := s.plocks[part]; ok {
		return m
	}
	m := &sync.Mutex{}
	s.plocks[part] = m
	return m
}

// localize ships every listed partition (with the given rows/ranges as its
// content hint) to dest. Competing localizations of a partition serialize
// on its mutex; the loser re-ships. Returns the number of partitions that
// actually moved.
func (s *LEAP) localize(dest int, refs []storage.RowRef, scans []sitemgr.ScanRange) (int, error) {
	// Partition the refs by partition id.
	partRefs := make(map[uint64][]storage.RowRef)
	for _, ref := range refs {
		p := s.cfg.Partitioner(ref)
		partRefs[p] = append(partRefs[p], ref)
	}
	// Ranges attach to every partition they cover.
	partScans := make(map[uint64][]sitemgr.ScanRange)
	for _, sc := range scans {
		seen := make(map[uint64]struct{})
		for k := sc.Lo; k < sc.Hi; k++ {
			p := s.cfg.Partitioner(storage.RowRef{Table: sc.Table, Key: k})
			if _, ok := seen[p]; ok {
				continue
			}
			seen[p] = struct{}{}
			partScans[p] = append(partScans[p], sc)
		}
	}
	parts := make(map[uint64]struct{})
	for p := range partRefs {
		parts[p] = struct{}{}
	}
	for p := range partScans {
		parts[p] = struct{}{}
	}

	moved := 0
	for p := range parts {
		mu := s.plock(p)
		mu.Lock()
		src := s.ownerOf(p)
		if src == dest {
			mu.Unlock()
			continue
		}
		// Ship the partition's touched rows from src to dest.
		req := sitemgr.ShipRequest{
			Refs:   partRefs[p],
			Scans:  partScans[p],
			Parts:  []uint64{p},
			ToSite: dest,
		}
		// Request to source, payload to destination.
		s.net.Send(transport.CatShipping, transport.MsgOverhead+transport.SizeOfRefs(req.Refs))
		rows, err := s.sites[src].ShipOut(req)
		if err != nil {
			mu.Unlock()
			return moved, fmt.Errorf("leap: ship out: %w", err)
		}
		s.net.Send(transport.CatShipping, transport.MsgOverhead+transport.SizeOfWrites(rows))
		if _, err := s.sites[dest].ShipIn([]uint64{p}, rows); err != nil {
			mu.Unlock()
			return moved, fmt.Errorf("leap: ship in: %w", err)
		}
		s.omu.Lock()
		s.owner[p] = dest
		s.omu.Unlock()
		moved++
		mu.Unlock()
	}
	if moved > 0 {
		s.remasters.Add(1)
	}
	return moved, nil
}

type leapClient struct {
	sys      *LEAP
	home     int // -1 until the first update pins it
	fallback int
	cvv      vclock.Vector
}

// site returns the client's home site, pinning it on first use.
func (c *leapClient) site(firstWrite []storage.RowRef) int {
	if c.home < 0 {
		if len(firstWrite) > 0 {
			c.home = c.sys.ownerOf(c.sys.cfg.Partitioner(firstWrite[0]))
		} else {
			c.home = c.fallback
		}
	}
	return c.home
}

// leapRetries bounds re-localization when partitions move away between
// localization and begin (ping-pong under contention).
const leapRetries = 512

// Update localizes the write set to the client's home site, then executes
// there as a plain local transaction.
func (c *leapClient) Update(writeSet []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	site := s.sites[c.site(writeSet)]
	// Owner locations are dynamic; the client consults the locator first.
	s.net.RoundTrip(transport.CatRoute, transport.MsgOverhead+transport.SizeOfRefs(writeSet), transport.MsgOverhead)
	for attempt := 0; ; attempt++ {
		if _, err := s.localize(c.home, writeSet, nil); err != nil {
			return err
		}
		s.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfRefs(writeSet))
		tx, err := site.Begin(s.sessionVV(c.cvv), writeSet)
		if err != nil {
			if attempt < leapRetries {
				continue // partition shipped away; re-localize
			}
			return fmt.Errorf("leap: begin after %d retries: %w", attempt, err)
		}
		adapter := &leapTx{tx: tx, c: c, update: true}
		ferr := fn(adapter)
		site.Exec(tx.Cost)
		if len(adapter.missingRefs) > 0 || len(adapter.missingScans) > 0 {
			// The transaction touched partitions owned elsewhere: abort
			// (releasing the writers), localize what was missing, retry.
			tx.Abort()
			if _, err := s.localize(c.home, adapter.missingRefs, adapter.missingScans); err != nil {
				return err
			}
			if attempt < leapRetries {
				continue
			}
			return fmt.Errorf("leap: unresolved localization after %d retries", attempt)
		}
		if ferr != nil {
			tx.Abort()
			return ferr
		}
		if adapter.err != nil {
			tx.Abort()
			return adapter.err
		}
		tvv, err := tx.Commit()
		if err != nil {
			return err
		}
		s.net.Send(transport.CatTxn, transport.MsgOverhead+transport.SizeOfVector(tvv))
		c.cvv = c.cvv.MaxInto(tvv)
		return nil
	}
}

// Read also executes at the home site; reads and scans of non-local
// partitions trigger localization mid-transaction (LEAP has no replicas to
// offload to — its key disadvantage for read-heavy workloads).
func (c *leapClient) Read(hint []storage.RowRef, fn func(Tx) error) error {
	s := c.sys
	site := s.sites[c.site(hint)]
	s.net.RoundTrip(transport.CatRoute, transport.MsgOverhead, transport.MsgOverhead)
	s.net.Send(transport.CatTxn, transport.MsgOverhead)
	tx, err := site.Begin(nil, nil)
	if err != nil {
		return err
	}
	adapter := &leapTx{tx: tx, c: c}
	ferr := fn(adapter)
	site.Exec(tx.Cost)
	if ferr != nil {
		tx.Abort()
		return ferr
	}
	if adapter.err != nil {
		tx.Abort()
		return adapter.err
	}
	_, err = tx.Commit()
	s.net.Send(transport.CatTxn, transport.MsgOverhead)
	return err
}

// leapTx localizes data on first touch. In a read-only transaction (which
// holds no partition writers) reads and scans of partitions owned
// elsewhere ship the rows over before serving them. In an update
// transaction — which registers as a writer on its write-set partitions at
// begin — shipping mid-transaction could deadlock with a concurrent
// shipment waiting for those writers, so a miss is recorded instead and
// the caller aborts, localizes, and retries the whole transaction.
type leapTx struct {
	tx     *sitemgr.Txn
	c      *leapClient
	update bool
	err    error

	// Misses recorded by an update transaction for post-abort localization.
	missingRefs  []storage.RowRef
	missingScans []sitemgr.ScanRange
}

func (t *leapTx) Read(ref storage.RowRef) ([]byte, bool) {
	s := t.c.sys
	if s.cfg.ReplicatedTables[ref.Table] {
		return t.tx.Read(ref) // static tables are replicated, never shipped
	}
	p := s.cfg.Partitioner(ref)
	if s.ownerOf(p) != t.c.home {
		if t.update {
			// Never ship while holding partition writers: record the
			// miss; the transaction aborts and retries after localizing.
			t.missingRefs = append(t.missingRefs, ref)
			return nil, false
		}
		if _, err := s.localize(t.c.home, []storage.RowRef{ref}, nil); err != nil {
			t.err = err
			return nil, false
		}
		// Shipped rows carry a fresh local commit stamp; read latest.
		return s.sites[t.c.home].ReadLocal(ref)
	}
	if data, ok := t.tx.Read(ref); ok {
		return data, ok
	}
	// The snapshot may predate a recent ship-in; fall back to latest.
	return s.sites[t.c.home].ReadLocal(ref)
}

func (t *leapTx) Scan(table string, lo, hi uint64) []storage.KV {
	s := t.c.sys
	if s.cfg.ReplicatedTables[table] {
		return t.tx.Scan(table, lo, hi)
	}
	// Determine whether any scanned partition is foreign.
	foreign := false
	seen := map[uint64]struct{}{}
	for k := lo; k < hi; k++ {
		p := s.cfg.Partitioner(storage.RowRef{Table: table, Key: k})
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		if s.ownerOf(p) != t.c.home {
			foreign = true
		}
	}
	if foreign {
		if t.update {
			t.missingScans = append(t.missingScans, sitemgr.ScanRange{Table: table, Lo: lo, Hi: hi})
			return nil
		}
		if _, err := s.localize(t.c.home, nil, []sitemgr.ScanRange{{Table: table, Lo: lo, Hi: hi}}); err != nil {
			t.err = err
			return nil
		}
	}
	return s.sites[t.c.home].ScanLocal(table, lo, hi)
}

func (t *leapTx) Write(ref storage.RowRef, data []byte) error {
	return t.tx.Write(ref, data)
}
