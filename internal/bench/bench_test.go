package bench

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
	"dynamast/internal/workload"
)

// fakeSystem commits instantly; used to test the harness itself.
type fakeSystem struct {
	commits atomic.Uint64
	delay   time.Duration
}

func (f *fakeSystem) Name() string                { return "fake" }
func (f *fakeSystem) CreateTable(string)          {}
func (f *fakeSystem) Load(rows []systems.LoadRow) {}
func (f *fakeSystem) Close()                      {}
func (f *fakeSystem) Stats() systems.Stats {
	return systems.Stats{Commits: f.commits.Load()}
}
func (f *fakeSystem) NewClient(id int) systems.Client { return &fakeClient{sys: f} }

type fakeClient struct{ sys *fakeSystem }

type fakeTx struct{}

func (fakeTx) Read(storage.RowRef) ([]byte, bool)       { return []byte("v"), true }
func (fakeTx) Scan(string, uint64, uint64) []storage.KV { return []storage.KV{{Key: 1}} }
func (fakeTx) Write(storage.RowRef, []byte) error       { return nil }

func (c *fakeClient) Update(ws []storage.RowRef, fn func(systems.Tx) error) error {
	if c.sys.delay > 0 {
		time.Sleep(c.sys.delay)
	}
	if err := fn(fakeTx{}); err != nil {
		return err
	}
	c.sys.commits.Add(1)
	return nil
}

func (c *fakeClient) Read(_ []storage.RowRef, fn func(systems.Tx) error) error {
	if c.sys.delay > 0 {
		time.Sleep(c.sys.delay)
	}
	return fn(fakeTx{})
}

func TestRunCountsAndThroughput(t *testing.T) {
	sys := &fakeSystem{delay: time.Millisecond}
	wl := workload.NewYCSB(workload.YCSBConfig{Keys: 1000})
	res := Run(sys, wl, Options{Clients: 4, Duration: 300 * time.Millisecond, Seed: 1})
	if res.Txns == 0 {
		t.Fatal("no transactions recorded")
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput < 100 {
		t.Fatalf("throughput = %f", res.Throughput)
	}
	if res.Overall.Count != int(res.Txns) {
		t.Fatalf("latency count %d != txns %d", res.Overall.Count, res.Txns)
	}
	if res.Overall.Avg < time.Millisecond {
		t.Fatalf("avg latency %v below injected delay", res.Overall.Avg)
	}
	// Per-kind samples must partition the total.
	sum := 0
	for _, l := range res.PerKind {
		sum += l.Count
	}
	if sum != res.Overall.Count {
		t.Fatalf("per-kind sum %d != %d", sum, res.Overall.Count)
	}
}

func TestRunWarmupExcluded(t *testing.T) {
	sys := &fakeSystem{}
	wl := workload.NewYCSB(workload.YCSBConfig{Keys: 1000})
	res := Run(sys, wl, Options{Clients: 2, Duration: 100 * time.Millisecond, Warmup: 100 * time.Millisecond, Seed: 1})
	// Commits counted by the system exceed measured txns (warmup ran).
	if res.Stats.Commits <= res.Txns/2 {
		t.Fatalf("warmup apparently measured: commits=%d txns=%d", res.Stats.Commits, res.Txns)
	}
}

func TestRunTimeline(t *testing.T) {
	sys := &fakeSystem{delay: time.Millisecond}
	wl := workload.NewYCSB(workload.YCSBConfig{Keys: 1000})
	res := Run(sys, wl, Options{
		Clients: 2, Duration: 200 * time.Millisecond, Seed: 1,
		TimelineBucket: 50 * time.Millisecond,
	})
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	var total uint64
	for _, n := range res.Timeline {
		total += n
	}
	if total != res.Txns {
		t.Fatalf("timeline total %d != txns %d", total, res.Txns)
	}
}

func TestLatencyFromHistogram(t *testing.T) {
	h := obs.NewHistogram()
	for i := 1; i <= 100; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	l := latencyFrom(h)
	if l.Count != 100 {
		t.Fatalf("count = %d", l.Count)
	}
	// The histogram's log-spaced buckets bound quantile error by one
	// factor-2 bucket; percentiles must land within the enclosing bucket.
	within := func(name string, got, exact time.Duration) {
		if got < exact/2 || got > exact*2 {
			t.Fatalf("%s = %v, exact %v (off by more than one bucket)", name, got, exact)
		}
	}
	within("p50", l.P50, 50*time.Millisecond)
	within("p90", l.P90, 90*time.Millisecond)
	within("p99", l.P99, 99*time.Millisecond)
	if l.Max != 100*time.Millisecond {
		t.Fatalf("max = %v", l.Max)
	}
	if l.Avg != 50500*time.Microsecond {
		t.Fatalf("avg = %v", l.Avg)
	}
	if empty := latencyFrom(obs.NewHistogram()); empty.Count != 0 || empty.Avg != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
	if !strings.Contains(l.String(), "n=100 avg=50.5ms") {
		t.Fatalf("String() = %q", l.String())
	}
}

func TestWeightsFor(t *testing.T) {
	if w := WeightsFor(workload.NewTPCC(workload.TPCCConfig{})); w.Balance != 3 {
		t.Fatalf("tpcc weights %+v", w)
	}
	if w := WeightsFor(workload.NewSmallBank(workload.SmallBankConfig{})); w.Balance != 1e4 {
		t.Fatalf("smallbank weights %+v", w)
	}
	if w := WeightsFor(workload.NewYCSB(workload.YCSBConfig{})); w.Balance != 1e6 {
		t.Fatalf("ycsb weights %+v", w)
	}
}

func TestBuildAllSystems(t *testing.T) {
	wl := workload.NewYCSB(workload.YCSBConfig{Keys: 1000})
	env := Env{Sites: 2} // instant wire, free costs
	for _, kind := range AllSystems() {
		sys, err := Build(kind, wl, env)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sys.Name() != string(kind) {
			t.Fatalf("name %q != kind %q", sys.Name(), kind)
		}
		// One transaction end-to-end.
		cl := sys.NewClient(0)
		ref := storage.RowRef{Table: workload.YCSBTable, Key: 1}
		if err := cl.Update([]storage.RowRef{ref}, func(tx systems.Tx) error {
			return tx.Write(ref, []byte("x"))
		}); err != nil {
			t.Fatalf("%s update: %v", kind, err)
		}
		sys.Close()
	}
	if _, err := Build(SystemKind("nope"), wl, env); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestExperimentPrint(t *testing.T) {
	exp := &Experiment{
		ID: "X", Caption: "test", Columns: []string{"a", "b"},
		Rows: []Row{{Label: "r1", Values: map[string]float64{"a": 1.5, "b": 2}}},
	}
	var sb strings.Builder
	exp.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "X: test") || !strings.Contains(out, "r1") ||
		!strings.Contains(out, "1.5") {
		t.Fatalf("print output:\n%s", out)
	}
}

func TestQuickScaleExperimentsRun(t *testing.T) {
	// Smoke the experiment wiring end-to-end at a tiny scale (not the
	// figures' reporting runs; just that every experiment executes).
	if testing.Short() {
		t.Skip("experiment smoke skipped in -short")
	}
	scale := Scale{Duration: 80 * time.Millisecond, Warmup: 40 * time.Millisecond, Clients: 8, Keys: 2_000, Seed: 3}
	if _, err := Fig7Breakdown(scale); err != nil {
		t.Fatal(err)
	}
	if _, err := FigOverhead(scale); err != nil {
		t.Fatal(err)
	}
	if exp, err := Fig5bAdaptivity(scale); err != nil || len(exp.Rows) == 0 {
		t.Fatalf("fig5b: %v", err)
	}
}
