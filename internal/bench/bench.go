// Package bench is the experiment harness: it drives a systems.System with
// a workload's closed-loop clients for a fixed duration (the OLTPBench
// methodology the paper uses), collecting throughput, per-class latency
// distributions, throughput timelines and system counters.
package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/systems"
	"dynamast/internal/workload"
)

// Options configures one benchmark run.
type Options struct {
	// Clients is the number of closed-loop clients.
	Clients int
	// Duration is the measured interval.
	Duration time.Duration
	// Warmup runs before measurement starts (transactions during warmup
	// execute but are not recorded).
	Warmup time.Duration
	// Seed drives the generators.
	Seed int64
	// TimelineBucket, when nonzero, records per-bucket completed-txn
	// counts over the measured interval (adaptivity experiments).
	TimelineBucket time.Duration
}

// Latency summarizes a latency distribution.
type Latency struct {
	Count              int
	Avg                time.Duration
	P50, P90, P99, Max time.Duration
}

// summarize computes the summary of a sample set (which it sorts).
func summarize(samples []time.Duration) Latency {
	l := Latency{Count: len(samples)}
	if len(samples) == 0 {
		return l
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	l.Avg = sum / time.Duration(len(samples))
	l.P50, l.P90, l.P99 = pct(0.50), pct(0.90), pct(0.99)
	l.Max = samples[len(samples)-1]
	return l
}

// String renders the summary compactly.
func (l Latency) String() string {
	return fmt.Sprintf("n=%d avg=%s p50=%s p90=%s p99=%s max=%s",
		l.Count, l.Avg.Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P90.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.Max.Round(time.Microsecond))
}

// Result is one run's outcome.
type Result struct {
	System     string
	Workload   string
	Clients    int
	Duration   time.Duration
	Txns       uint64
	Errors     uint64
	Throughput float64 // committed transactions per second
	Overall    Latency
	PerKind    map[string]Latency
	Stats      systems.Stats
	Timeline   []uint64 // per-bucket completed txns, if requested
}

// Run drives sys with wl's clients under opts. The system must already be
// loaded (see Build).
func Run(sys systems.System, wl workload.Workload, opts Options) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	type sample struct {
		kind string
		d    time.Duration
	}
	perClient := make([][]sample, opts.Clients)
	var txns, errs atomic.Uint64

	var timeline []atomic.Uint64
	if opts.TimelineBucket > 0 {
		n := int(opts.Duration/opts.TimelineBucket) + 1
		timeline = make([]atomic.Uint64, n)
	}

	start := time.Now()
	measureStart := start.Add(opts.Warmup)
	deadline := measureStart.Add(opts.Duration)

	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := wl.NewGenerator(c, opts.Seed)
			cl := sys.NewClient(c)
			local := make([]sample, 0, 4096)
			for {
				now := time.Now()
				if now.After(deadline) {
					break
				}
				txn := gen.Next()
				t0 := time.Now()
				err := workload.Execute(cl, txn)
				d := time.Since(t0)
				if t0.Before(measureStart) {
					continue
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				txns.Add(1)
				local = append(local, sample{txn.Kind, d})
				if timeline != nil {
					b := int(time.Since(measureStart) / opts.TimelineBucket)
					if b >= 0 && b < len(timeline) {
						timeline[b].Add(1)
					}
				}
			}
			perClient[c] = local
		}(c)
	}
	wg.Wait()

	all := make([]time.Duration, 0, 1024)
	byKind := make(map[string][]time.Duration)
	for _, samples := range perClient {
		for _, s := range samples {
			all = append(all, s.d)
			byKind[s.kind] = append(byKind[s.kind], s.d)
		}
	}
	res := Result{
		System:   sys.Name(),
		Workload: wl.Name(),
		Clients:  opts.Clients,
		Duration: opts.Duration,
		Txns:     txns.Load(),
		Errors:   errs.Load(),
		Overall:  summarize(all),
		PerKind:  make(map[string]Latency, len(byKind)),
		Stats:    sys.Stats(),
	}
	res.Throughput = float64(res.Txns) / opts.Duration.Seconds()
	for k, samples := range byKind {
		res.PerKind[k] = summarize(samples)
	}
	for i := range timeline {
		res.Timeline = append(res.Timeline, timeline[i].Load())
	}
	return res
}
