// Package bench is the experiment harness: it drives a systems.System with
// a workload's closed-loop clients for a fixed duration (the OLTPBench
// methodology the paper uses), collecting throughput, per-class latency
// distributions, throughput timelines and system counters.
package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dynamast/internal/obs"
	"dynamast/internal/systems"
	"dynamast/internal/workload"
)

// Options configures one benchmark run.
type Options struct {
	// Clients is the number of closed-loop clients.
	Clients int
	// Duration is the measured interval.
	Duration time.Duration
	// Warmup runs before measurement starts (transactions during warmup
	// execute but are not recorded).
	Warmup time.Duration
	// Seed drives the generators.
	Seed int64
	// TimelineBucket, when nonzero, records per-bucket completed-txn
	// counts over the measured interval (adaptivity experiments).
	TimelineBucket time.Duration
}

// Latency summarizes a latency distribution.
type Latency struct {
	Count              int
	Avg                time.Duration
	P50, P90, P99, Max time.Duration
}

// latencyFrom summarizes a streaming histogram. Quantiles are interpolated
// within the histogram's log-spaced buckets rather than read from retained
// samples, keeping the harness's memory constant regardless of run length.
func latencyFrom(h *obs.Histogram) Latency {
	l := Latency{Count: int(h.Count())}
	if l.Count == 0 {
		return l
	}
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	l.Avg = sec(h.Avg())
	l.P50, l.P90, l.P99 = sec(h.Quantile(0.50)), sec(h.Quantile(0.90)), sec(h.Quantile(0.99))
	l.Max = sec(h.Max())
	return l
}

// String renders the summary compactly.
func (l Latency) String() string {
	return fmt.Sprintf("n=%d avg=%s p50=%s p90=%s p99=%s max=%s",
		l.Count, l.Avg.Round(time.Microsecond), l.P50.Round(time.Microsecond),
		l.P90.Round(time.Microsecond), l.P99.Round(time.Microsecond),
		l.Max.Round(time.Microsecond))
}

// Result is one run's outcome.
type Result struct {
	System     string
	Workload   string
	Clients    int
	Duration   time.Duration
	Txns       uint64
	Errors     uint64
	Throughput float64 // committed transactions per second
	Overall    Latency
	PerKind    map[string]Latency
	Stats      systems.Stats
	Timeline   []uint64 // per-bucket completed txns, if requested
}

// Run drives sys with wl's clients under opts. The system must already be
// loaded (see Build).
func Run(sys systems.System, wl workload.Workload, opts Options) Result {
	if opts.Clients <= 0 {
		opts.Clients = 1
	}
	// Latency distributions stream into shared lock-free histograms; the
	// per-kind map itself is guarded, and each client caches its lookups.
	overall := obs.NewHistogram()
	var kindMu sync.Mutex
	byKind := make(map[string]*obs.Histogram)
	kindHist := func(kind string) *obs.Histogram {
		kindMu.Lock()
		defer kindMu.Unlock()
		h := byKind[kind]
		if h == nil {
			h = obs.NewHistogram()
			byKind[kind] = h
		}
		return h
	}
	var txns, errs atomic.Uint64

	var timeline []atomic.Uint64
	if opts.TimelineBucket > 0 {
		n := int(opts.Duration/opts.TimelineBucket) + 1
		timeline = make([]atomic.Uint64, n)
	}

	start := time.Now()
	measureStart := start.Add(opts.Warmup)
	deadline := measureStart.Add(opts.Duration)

	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen := wl.NewGenerator(c, opts.Seed)
			cl := sys.NewClient(c)
			local := make(map[string]*obs.Histogram, 4)
			for {
				now := time.Now()
				if now.After(deadline) {
					break
				}
				txn := gen.Next()
				t0 := time.Now()
				err := workload.Execute(cl, txn)
				d := time.Since(t0)
				if t0.Before(measureStart) {
					continue
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				txns.Add(1)
				overall.ObserveDuration(d)
				h := local[txn.Kind]
				if h == nil {
					h = kindHist(txn.Kind)
					local[txn.Kind] = h
				}
				h.ObserveDuration(d)
				if timeline != nil {
					b := int(time.Since(measureStart) / opts.TimelineBucket)
					if b >= 0 && b < len(timeline) {
						timeline[b].Add(1)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	res := Result{
		System:   sys.Name(),
		Workload: wl.Name(),
		Clients:  opts.Clients,
		Duration: opts.Duration,
		Txns:     txns.Load(),
		Errors:   errs.Load(),
		Overall:  latencyFrom(overall),
		PerKind:  make(map[string]Latency, len(byKind)),
		Stats:    sys.Stats(),
	}
	res.Throughput = float64(res.Txns) / opts.Duration.Seconds()
	for k, h := range byKind {
		res.PerKind[k] = latencyFrom(h)
	}
	for i := range timeline {
		res.Timeline = append(res.Timeline, timeline[i].Load())
	}
	return res
}
