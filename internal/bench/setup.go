package bench

import (
	"fmt"
	"strings"
	"time"

	"dynamast/internal/core"
	"dynamast/internal/selector"
	"dynamast/internal/sitemgr"
	"dynamast/internal/systems"
	"dynamast/internal/transport"
	"dynamast/internal/workload"
)

// SystemKind names an evaluated architecture.
type SystemKind string

// The five evaluated systems (§VI-A1).
const (
	KindDynaMast       SystemKind = "dynamast"
	KindSingleMaster   SystemKind = "single-master"
	KindMultiMaster    SystemKind = "multi-master"
	KindPartitionStore SystemKind = "partition-store"
	KindLEAP           SystemKind = "leap"
)

// AllSystems lists the evaluated systems in the paper's presentation order.
func AllSystems() []SystemKind {
	return []SystemKind{KindDynaMast, KindSingleMaster, KindMultiMaster,
		KindPartitionStore, KindLEAP}
}

// Env is the shared experiment environment: cluster size, network and
// execution-capacity model.
type Env struct {
	Sites     int
	Network   transport.Config
	ExecSlots int
	Costs     sitemgr.CostModel
	Seed      int64
	// Weights overrides DynaMast's strategy hyperparameters; zero value
	// selects the paper's per-workload defaults.
	Weights selector.Weights
	// PropagationDelay overrides replica propagation lag.
	PropagationDelay time.Duration
	// InitialMaster overrides DynaMast's initial partition placement
	// (nil = the default pseudo-random scatter).
	InitialMaster func(part uint64) int
	// EpochInterval overrides DynaMast's epoch group-commit interval
	// (0 = the core default; negative disables epochs for A/B runs).
	EpochInterval time.Duration
}

// DefaultEnv is the standard experiment environment: the paper's simulated
// datacenter wire and the default site capacity.
func DefaultEnv(sites int) Env {
	return Env{
		Sites:     sites,
		Network:   transport.DefaultConfig(),
		ExecSlots: sitemgr.DefaultExecSlots,
		Costs:     sitemgr.DefaultCostModel(),
	}
}

// WeightsFor returns the paper's per-workload hyperparameters (App. H).
func WeightsFor(wl workload.Workload) selector.Weights {
	name := wl.Name()
	switch {
	case strings.HasPrefix(name, "tpcc"):
		return selector.TPCCWeights()
	case name == "smallbank":
		return selector.SmallBankWeights()
	default:
		return selector.YCSBWeights()
	}
}

// Build constructs, creates tables on, and loads one system for wl.
func Build(kind SystemKind, wl workload.Workload, env Env) (systems.System, error) {
	var sys systems.System
	switch kind {
	case KindDynaMast:
		w := env.Weights
		if w == (selector.Weights{}) {
			w = WeightsFor(wl)
		}
		c, err := core.NewCluster(core.Config{
			Sites:         env.Sites,
			Partitioner:   wl.Partitioner(),
			Weights:       w,
			Network:       env.Network,
			ExecSlots:     env.ExecSlots,
			Costs:         env.Costs,
			InitialMaster: env.InitialMaster,
			Seed:          env.Seed,
			EpochInterval: env.EpochInterval,
		})
		if err != nil {
			return nil, err
		}
		sys = c
	default:
		cfg := systems.BaseConfig{
			Sites:            env.Sites,
			Partitioner:      wl.Partitioner(),
			Placement:        wl.Placement(env.Sites),
			ReplicatedTables: wl.ReplicatedTables(),
			Network:          env.Network,
			ExecSlots:        env.ExecSlots,
			Costs:            env.Costs,
			Seed:             env.Seed,
		}
		var err error
		switch kind {
		case KindSingleMaster:
			sys, err = systems.NewSingleMaster(cfg)
		case KindMultiMaster:
			sys, err = systems.NewMultiMaster(cfg)
		case KindPartitionStore:
			sys, err = systems.NewPartitionStore(cfg)
		case KindLEAP:
			sys, err = systems.NewLEAP(cfg)
		default:
			return nil, fmt.Errorf("bench: unknown system %q", kind)
		}
		if err != nil {
			return nil, err
		}
	}
	for _, t := range wl.Tables() {
		sys.CreateTable(t)
	}
	sys.Load(wl.LoadRows())
	return sys, nil
}

// RunOne builds kind for wl, runs it, and tears it down.
func RunOne(kind SystemKind, wl workload.Workload, env Env, opts Options) (Result, error) {
	sys, err := Build(kind, wl, env)
	if err != nil {
		return Result{}, err
	}
	defer sys.Close()
	return Run(sys, wl, opts), nil
}
