package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"dynamast/internal/core"
	"dynamast/internal/selector"
	"dynamast/internal/transport"
	"dynamast/internal/workload"
)

// Scale sizes an experiment run. Quick keeps unit benches fast; Full is the
// reporting configuration used by cmd/dynamast-bench and the final
// EXPERIMENTS.md numbers.
type Scale struct {
	Duration time.Duration
	Warmup   time.Duration
	Clients  int
	Keys     uint64 // YCSB key count
	Seed     int64
	// EpochInterval overrides DynaMast's epoch group-commit interval for
	// A/B comparisons (0 = the core default; negative disables epochs).
	EpochInterval time.Duration
}

// QuickScale runs each point in well under a second.
func QuickScale() Scale {
	return Scale{Duration: 400 * time.Millisecond, Warmup: 200 * time.Millisecond, Clients: 64, Keys: 10_000, Seed: 1}
}

// FullScale is the reporting configuration. The warmup is long enough for
// DynaMast's placement to largely converge (remastering decays from ~50%
// of writes at cold start toward the paper's few-percent steady state).
func FullScale() Scale {
	return Scale{Duration: 4 * time.Second, Warmup: 10 * time.Second, Clients: 128, Keys: 50_000, Seed: 1}
}

func (s Scale) opts() Options {
	return Options{Clients: s.Clients, Duration: s.Duration, Warmup: s.Warmup, Seed: s.Seed}
}

// Row is one line of an experiment's output table.
type Row struct {
	Label  string
	Values map[string]float64
	Result *Result
}

// Experiment is a regenerated figure/table.
type Experiment struct {
	ID      string
	Caption string
	Columns []string
	Rows    []Row
}

// Print renders the experiment as an aligned table.
func (e *Experiment) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Caption)
	fmt.Fprintf(w, "%-34s", "config")
	for _, c := range e.Columns {
		fmt.Fprintf(w, "%16s", c)
	}
	fmt.Fprintln(w)
	for _, r := range e.Rows {
		fmt.Fprintf(w, "%-34s", r.Label)
		for _, c := range e.Columns {
			fmt.Fprintf(w, "%16.1f", r.Values[c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// runSystems runs every evaluated system over one workload configuration
// and emits one row per system with the requested metric columns.
func runSystems(wl workload.Workload, env Env, opts Options, metric func(Result) map[string]float64) ([]Row, error) {
	var rows []Row
	for _, kind := range AllSystems() {
		res, err := RunOne(kind, wl, env, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", kind, err)
		}
		r := res
		rows = append(rows, Row{Label: string(kind), Values: metric(res), Result: &r})
	}
	return rows, nil
}

func msAvgP90P99(kind string) func(Result) map[string]float64 {
	return func(r Result) map[string]float64 {
		l := r.PerKind[kind]
		return map[string]float64{
			"avg_ms": float64(l.Avg) / 1e6,
			"p90_ms": float64(l.P90) / 1e6,
			"p99_ms": float64(l.P99) / 1e6,
		}
	}
}

func throughputMetric(r Result) map[string]float64 {
	return map[string]float64{
		"txn_per_s": r.Throughput,
		"errors":    float64(r.Errors),
	}
}

// Fig4aYCSBUniform5050 (E1): throughput of the five systems on uniform
// YCSB 50/50 RMW/scan as clients increase.
func Fig4aYCSBUniform5050(scale Scale, clientPoints []int) (*Experiment, error) {
	return ycsbThroughputSweep("Fig4a", "YCSB uniform 50/50 RMW/scan throughput vs clients",
		scale, clientPoints, 50, false)
}

// Fig4bYCSBUniform9010 (E2): throughput on uniform YCSB 90/10 RMW/scan.
func Fig4bYCSBUniform9010(scale Scale, clientPoints []int) (*Experiment, error) {
	return ycsbThroughputSweep("Fig4b", "YCSB uniform 90/10 RMW/scan throughput vs clients",
		scale, clientPoints, 90, false)
}

// FigSkewYCSBZipfian (E7): throughput on zipfian YCSB 90/10.
func FigSkewYCSBZipfian(scale Scale) (*Experiment, error) {
	return ycsbThroughputSweep("FigSkew", "YCSB zipfian(0.75) 90/10 RMW/scan throughput",
		scale, []int{scale.Clients}, 90, true)
}

func ycsbThroughputSweep(id, caption string, scale Scale, clientPoints []int, rmwPct int, zipf bool) (*Experiment, error) {
	exp := &Experiment{ID: id, Caption: caption, Columns: []string{"txn_per_s", "errors"}}
	if len(clientPoints) == 0 {
		clientPoints = []int{scale.Clients}
	}
	for _, clients := range clientPoints {
		wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: rmwPct, Zipfian: zipf})
		env := DefaultEnv(4)
		env.Seed = scale.Seed
		env.EpochInterval = scale.EpochInterval
		opts := scale.opts()
		opts.Clients = clients
		rows, err := runSystems(wl, env, opts, throughputMetric)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			r.Label = fmt.Sprintf("%s clients=%d", r.Label, clients)
			exp.Rows = append(exp.Rows, r)
		}
	}
	return exp, nil
}

// tpccWorkload builds the standard TPC-C configuration; quick scales use
// a smaller database so data loading does not dominate the run.
func tpccWorkload(scale Scale, noPct, payPct, crossNO, crossPay int) *workload.TPCC {
	cfg := workload.TPCCConfig{
		NewOrderPercent:  noPct,
		PaymentPercent:   payPct,
		CrossNewOrderPct: crossNO,
		CrossPaymentPct:  crossPay,
	}
	if scale.Keys < 20_000 {
		cfg.Items = 500
		cfg.CustomersPerD = 30
		cfg.InitialOrders = 10
	}
	return workload.NewTPCC(cfg)
}

// tpccOpts sizes a TPC-C run: the paper drives 8 sites with 350 concurrent
// clients; quick scales keep their small client counts.
func tpccOpts(scale Scale) Options {
	opts := scale.opts()
	if scale.Clients >= 100 {
		opts.Clients = 350
	}
	return opts
}

// Fig4cTPCCNewOrderLatency (E3): New-Order latency (avg/p90/p99) across the
// systems at the default 45/45/10 mix on 8 sites.
func Fig4cTPCCNewOrderLatency(scale Scale) (*Experiment, error) {
	wl := tpccWorkload(scale, 45, 45, 10, 15)
	env := DefaultEnv(8)
	env.Seed = scale.Seed
	rows, err := runSystems(wl, env, tpccOpts(scale), msAvgP90P99("neworder"))
	if err != nil {
		return nil, err
	}
	return &Experiment{ID: "Fig4c", Caption: "TPC-C New-Order latency (45/45/10, 8 sites)",
		Columns: []string{"avg_ms", "p90_ms", "p99_ms"}, Rows: rows}, nil
}

// Fig4dTPCCStockLevelLatency (E4): Stock-Level latency across systems.
func Fig4dTPCCStockLevelLatency(scale Scale) (*Experiment, error) {
	wl := tpccWorkload(scale, 45, 45, 10, 15)
	env := DefaultEnv(8)
	env.Seed = scale.Seed
	rows, err := runSystems(wl, env, tpccOpts(scale), msAvgP90P99("stocklevel"))
	if err != nil {
		return nil, err
	}
	return &Experiment{ID: "Fig4d", Caption: "TPC-C Stock-Level latency (45/45/10, 8 sites)",
		Columns: []string{"avg_ms", "p90_ms", "p99_ms"}, Rows: rows}, nil
}

// Fig4eTPCCNewOrderMix (E5): throughput as the New-Order share grows.
func Fig4eTPCCNewOrderMix(scale Scale, noPoints []int) (*Experiment, error) {
	if len(noPoints) == 0 {
		noPoints = []int{25, 45, 70, 90}
	}
	exp := &Experiment{ID: "Fig4e", Caption: "TPC-C throughput vs % New-Order",
		Columns: []string{"txn_per_s", "errors"}}
	for _, no := range noPoints {
		pay := (100 - no) * 45 / 55
		if no+pay > 95 {
			pay = 95 - no
		}
		wl := tpccWorkload(scale, no, pay, 10, 15)
		env := DefaultEnv(8)
		env.Seed = scale.Seed
		rows, err := runSystems(wl, env, tpccOpts(scale), throughputMetric)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			r.Label = fmt.Sprintf("%s neworder=%d%%", r.Label, no)
			exp.Rows = append(exp.Rows, r)
		}
	}
	return exp, nil
}

// FigCrossWarehouse (E6): New-Order latency as cross-warehouse share grows.
func FigCrossWarehouse(scale Scale, crossPoints []int) (*Experiment, error) {
	if len(crossPoints) == 0 {
		crossPoints = []int{-1, 10, 20, 33} // -1 encodes 0%
	}
	exp := &Experiment{ID: "FigXWH", Caption: "TPC-C New-Order avg latency vs % cross-warehouse",
		Columns: []string{"avg_ms", "p90_ms", "p99_ms"}}
	for _, cross := range crossPoints {
		wl := tpccWorkload(scale, 45, 45, cross, 15)
		env := DefaultEnv(8)
		env.Seed = scale.Seed
		rows, err := runSystems(wl, env, tpccOpts(scale), msAvgP90P99("neworder"))
		if err != nil {
			return nil, err
		}
		pct := cross
		if pct < 0 {
			pct = 0
		}
		for _, r := range rows {
			r.Label = fmt.Sprintf("%s cross=%d%%", r.Label, pct)
			exp.Rows = append(exp.Rows, r)
		}
	}
	return exp, nil
}

// Fig5bAdaptivity (E8): DynaMast's response to a workload change (the
// paper's randomized-correlation YCSB experiment: 100 clients, 100% RMW,
// skew, client affinity 25). The cluster first converges on the default
// range-structured correlations; then the correlation pattern is
// randomized (a seeded permutation of partition ids) and both throughput
// and the remastering rate are tracked in slices from the moment of the
// change. Adaptation shows as the remastering rate collapsing (typically
// >10x within a few slices) while throughput recovers; the paper reports
// the corresponding throughput effect as a ~1.6x rise over its interval.
func Fig5bAdaptivity(scale Scale) (*Experiment, error) {
	base := workload.YCSBConfig{
		Keys: scale.Keys, RMWPercent: 100, Zipfian: true, AffinityTxns: 25,
	}
	wl1 := workload.NewYCSB(base)
	cfg2 := base
	cfg2.Shuffled = true
	cfg2.ShuffleSeed = 13
	wl2 := workload.NewYCSB(cfg2)

	env := DefaultEnv(4)
	env.Seed = scale.Seed
	sys, err := Build(KindDynaMast, wl1, env)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	cluster := sys.(*core.Cluster)

	// Phase 1: converge on the original correlations.
	Run(sys, wl1, Options{Clients: 100, Duration: scale.Warmup + scale.Duration, Seed: scale.Seed})

	// Phase 2: the workload changes; measure slices from the change.
	exp := &Experiment{ID: "Fig5b", Caption: "DynaMast adaptivity after a correlation change (per-slice)",
		Columns: []string{"txn_per_s", "remaster_pct"}}
	m := cluster.Selector().Metrics()
	lastW, lastR := m.WriteTxns, m.RemasterTxns
	slice := scale.Duration / 2
	if slice <= 0 {
		slice = scale.Duration
	}
	var firstRate, lastRate float64
	for i := 0; i < 6; i++ {
		res := Run(sys, wl2, Options{Clients: 100, Duration: slice, Seed: scale.Seed + int64(i) + 1})
		m = cluster.Selector().Metrics()
		dw, dr := m.WriteTxns-lastW, m.RemasterTxns-lastR
		lastW, lastR = m.WriteTxns, m.RemasterTxns
		rate := 0.0
		if dw > 0 {
			rate = 100 * float64(dr) / float64(dw)
		}
		if i == 0 {
			firstRate = rate
		}
		lastRate = rate
		exp.Rows = append(exp.Rows, Row{
			Label:  fmt.Sprintf("slice %d", i),
			Values: map[string]float64{"txn_per_s": res.Throughput, "remaster_pct": rate},
		})
	}
	reduction := 0.0
	if lastRate > 0 {
		reduction = firstRate / lastRate
	}
	exp.Rows = append(exp.Rows, Row{
		Label:  "remaster-rate reduction (x)",
		Values: map[string]float64{"txn_per_s": 0, "remaster_pct": reduction},
	})
	return exp, nil
}

// Fig5aSensitivity (E9): DynaMast throughput while scaling each strategy
// weight over orders of magnitude, including zeroing it, on skewed YCSB;
// also reports the per-site routing fractions when w_balance is scaled to
// 0.01 of its default (the paper's 34%/13% imbalance).
func Fig5aSensitivity(scale Scale) (*Experiment, error) {
	exp := &Experiment{ID: "Fig5a", Caption: "DynaMast weight sensitivity (YCSB zipfian 90/10)",
		Columns: []string{"txn_per_s", "remaster_pct", "route_max_pct", "route_min_pct"}}
	base := selector.YCSBWeights()
	type variant struct {
		label string
		w     selector.Weights
	}
	variants := []variant{{"defaults", base}}
	for _, f := range []float64{0, 0.01, 0.1, 10, 100} {
		w := base
		w.Balance = base.Balance * f
		variants = append(variants, variant{fmt.Sprintf("w_balance x%g", f), w})
	}
	for _, f := range []float64{0, 0.1, 10} {
		w := base
		w.IntraTxn = base.IntraTxn * f
		variants = append(variants, variant{fmt.Sprintf("w_intra x%g", f), w})
	}
	for _, f := range []float64{0, 10} {
		w := base
		w.Delay = base.Delay * f
		variants = append(variants, variant{fmt.Sprintf("w_delay x%g", f), w})
	}
	for _, v := range variants {
		wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: 90, Zipfian: true})
		env := DefaultEnv(4)
		env.Seed = scale.Seed
		env.Weights = v.w
		sys, err := Build(KindDynaMast, wl, env)
		if err != nil {
			return nil, err
		}
		res := Run(sys, wl, scale.opts())
		cluster := sys.(interface {
			Selector() *selector.Selector
		})
		m := cluster.Selector().Metrics()
		var maxR, minR, total uint64
		minR = ^uint64(0)
		for _, n := range m.RoutedPerSite {
			total += n
			if n > maxR {
				maxR = n
			}
			if n < minR {
				minR = n
			}
		}
		remPct, maxPct, minPct := 0.0, 0.0, 0.0
		if m.WriteTxns > 0 {
			remPct = 100 * float64(m.RemasterTxns) / float64(m.WriteTxns)
		}
		if total > 0 {
			maxPct = 100 * float64(maxR) / float64(total)
			minPct = 100 * float64(minR) / float64(total)
		}
		sys.Close()
		exp.Rows = append(exp.Rows, Row{Label: v.label, Values: map[string]float64{
			"txn_per_s": res.Throughput, "remaster_pct": remPct,
			"route_max_pct": maxPct, "route_min_pct": minPct,
		}})
	}
	return exp, nil
}

// Fig7Breakdown (E10): DynaMast's per-phase latency breakdown on uniform
// YCSB 50/50 (site-selector locate+route, network, begin, transaction
// logic, commit).
func Fig7Breakdown(scale Scale) (*Experiment, error) {
	wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: 50})
	env := DefaultEnv(4)
	env.Seed = scale.Seed
	sys, err := Build(KindDynaMast, wl, env)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	Run(sys, wl, scale.opts())
	cluster := sys.(*core.Cluster)
	bd := cluster.Breakdown()
	total := bd.Route + bd.Network + bd.Begin + bd.Logic + bd.Commit
	exp := &Experiment{ID: "Fig7", Caption: "DynaMast update-transaction latency breakdown (YCSB uniform 50/50)",
		Columns: []string{"avg_us", "pct"}}
	phase := func(name string, d time.Duration) {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(d) / float64(total)
		}
		exp.Rows = append(exp.Rows, Row{Label: name, Values: map[string]float64{
			"avg_us": float64(d) / 1e3, "pct": pct,
		}})
	}
	phase("route (selector incl. remaster)", bd.Route)
	phase("network", bd.Network)
	phase("begin (locks + session wait)", bd.Begin)
	phase("transaction logic", bd.Logic)
	phase("commit", bd.Commit)
	return exp, nil
}

// Fig6bDBSize (E11): DynaMast throughput at 1x and 6x database size across
// the four YCSB mixes.
func Fig6bDBSize(scale Scale) (*Experiment, error) {
	exp := &Experiment{ID: "Fig6b", Caption: "DynaMast throughput vs database size (YCSB mixes)",
		Columns: []string{"txn_per_s"}}
	type mix struct {
		label string
		rmw   int
		zipf  bool
	}
	mixes := []mix{{"50-50U", 50, false}, {"90-10U", 90, false}, {"90-10S", 90, true}}
	for _, sizeMul := range []uint64{1, 6} {
		for _, mx := range mixes {
			wl := workload.NewYCSB(workload.YCSBConfig{
				Keys: scale.Keys * sizeMul, RMWPercent: mx.rmw, Zipfian: mx.zipf,
			})
			env := DefaultEnv(4)
			env.Seed = scale.Seed
			res, err := RunOne(KindDynaMast, wl, env, scale.opts())
			if err != nil {
				return nil, err
			}
			exp.Rows = append(exp.Rows, Row{
				Label:  fmt.Sprintf("%s size x%d", mx.label, sizeMul),
				Values: map[string]float64{"txn_per_s": res.Throughput},
			})
		}
	}
	return exp, nil
}

// Fig6cSiteScaling (E12): DynaMast throughput at 4/8/12/16 sites, uniform
// 50/50 (the paper reports >3x from 4 to 16).
func Fig6cSiteScaling(scale Scale, sitePoints []int) (*Experiment, error) {
	if len(sitePoints) == 0 {
		sitePoints = []int{4, 8, 12, 16}
	}
	exp := &Experiment{ID: "Fig6c", Caption: "DynaMast throughput vs data sites (YCSB uniform 50/50)",
		Columns: []string{"txn_per_s", "speedup"}}
	var base float64
	for _, m := range sitePoints {
		wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: 50})
		env := DefaultEnv(m)
		env.Seed = scale.Seed
		opts := scale.opts()
		opts.Clients = scale.Clients * m / sitePoints[0]
		res, err := RunOne(KindDynaMast, wl, env, opts)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.Throughput
		}
		exp.Rows = append(exp.Rows, Row{
			Label: fmt.Sprintf("sites=%d clients=%d", m, opts.Clients),
			Values: map[string]float64{
				"txn_per_s": res.Throughput,
				"speedup":   res.Throughput / base,
			},
		})
	}
	return exp, nil
}

// Fig8aSmallBankThroughput (E13): SmallBank max throughput, five systems.
func Fig8aSmallBankThroughput(scale Scale) (*Experiment, error) {
	wl := workload.NewSmallBank(workload.SmallBankConfig{Customers: scale.Keys})
	env := DefaultEnv(4)
	env.Seed = scale.Seed
	rows, err := runSystems(wl, env, scale.opts(), throughputMetric)
	if err != nil {
		return nil, err
	}
	return &Experiment{ID: "Fig8a", Caption: "SmallBank throughput",
		Columns: []string{"txn_per_s", "errors"}, Rows: rows}, nil
}

// Fig8bcdSmallBankTails (E14): SmallBank per-class tail latency.
func Fig8bcdSmallBankTails(scale Scale) (*Experiment, error) {
	wl := workload.NewSmallBank(workload.SmallBankConfig{Customers: scale.Keys})
	env := DefaultEnv(4)
	env.Seed = scale.Seed
	exp := &Experiment{ID: "Fig8b-d", Caption: "SmallBank per-class latency (multi-update / single-update / balance)",
		Columns: []string{"avg_ms", "p99_ms", "max_ms"}}
	for _, kind := range AllSystems() {
		res, err := RunOne(kind, wl, env, scale.opts())
		if err != nil {
			return nil, err
		}
		for _, class := range []string{"multi-update", "single-update", "balance"} {
			l := res.PerKind[class]
			exp.Rows = append(exp.Rows, Row{
				Label: fmt.Sprintf("%s %s", kind, class),
				Values: map[string]float64{
					"avg_ms": float64(l.Avg) / 1e6,
					"p99_ms": float64(l.P99) / 1e6,
					"max_ms": float64(l.Max) / 1e6,
				},
			})
		}
	}
	return exp, nil
}

// Fig8efgPayment (E15): TPC-C Payment latency across systems, and its
// growth as cross-warehouse Payments increase.
func Fig8efgPayment(scale Scale) (*Experiment, error) {
	exp := &Experiment{ID: "Fig8e-g", Caption: "TPC-C Payment latency; sweep of % cross-warehouse Payments",
		Columns: []string{"avg_ms", "p90_ms", "p99_ms"}}
	for _, crossPay := range []int{-1, 15, 30} {
		wl := tpccWorkload(scale, 45, 45, 10, crossPay)
		env := DefaultEnv(8)
		env.Seed = scale.Seed
		rows, err := runSystems(wl, env, tpccOpts(scale), msAvgP90P99("payment"))
		if err != nil {
			return nil, err
		}
		pct := crossPay
		if pct < 0 {
			pct = 0
		}
		for _, r := range rows {
			r.Label = fmt.Sprintf("%s crosspay=%d%%", r.Label, pct)
			exp.Rows = append(exp.Rows, r)
		}
	}
	return exp, nil
}

// FigOverhead (E16): DynaMast remastering overhead — fraction of
// transactions that required remastering and network bytes by category
// (YCSB uniform 50/50).
func FigOverhead(scale Scale) (*Experiment, error) {
	wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: 50})
	env := DefaultEnv(4)
	env.Seed = scale.Seed
	sys, err := Build(KindDynaMast, wl, env)
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	res := Run(sys, wl, scale.opts())
	cluster := sys.(interface {
		Selector() *selector.Selector
		Network() *transport.Network
	})
	m := cluster.Selector().Metrics()
	exp := &Experiment{ID: "FigOverhead", Caption: "DynaMast remastering overhead (YCSB uniform 50/50)",
		Columns: []string{"value"}}
	remPct := 0.0
	if m.WriteTxns > 0 {
		remPct = 100 * float64(m.RemasterTxns) / float64(m.WriteTxns)
	}
	exp.Rows = append(exp.Rows,
		Row{Label: "write txns", Values: map[string]float64{"value": float64(m.WriteTxns)}},
		Row{Label: "remastered txns (%)", Values: map[string]float64{"value": remPct}},
		Row{Label: "partitions moved", Values: map[string]float64{"value": float64(m.PartsMoved)}},
		Row{Label: "throughput (txn/s)", Values: map[string]float64{"value": res.Throughput}},
	)
	secs := (scale.Duration + scale.Warmup).Seconds()
	for _, st := range cluster.Network().Stats() {
		exp.Rows = append(exp.Rows, Row{
			Label:  fmt.Sprintf("net %s (KB/s)", st.Category),
			Values: map[string]float64{"value": float64(st.Bytes) / 1024 / secs},
		})
	}
	return exp, nil
}

// FigLatencyAblation is a reproduction-specific ablation: sweep the
// simulated one-way network latency and compare DynaMast with multi-master
// on a cross-partition-heavy YCSB mix. The 2PC gap grows with RTT because
// distributed commits pay multiple rounds per transaction while
// remastering is amortized across many.
func FigLatencyAblation(scale Scale) (*Experiment, error) {
	exp := &Experiment{ID: "FigLatAbl", Caption: "DynaMast vs multi-master throughput vs one-way latency (YCSB 90/10)",
		Columns: []string{"txn_per_s", "dm_over_mm"}}
	for _, oneWay := range []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond} {
		wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: 90})
		env := DefaultEnv(4)
		env.Seed = scale.Seed
		env.Network.OneWay = oneWay
		var dm, mm float64
		for _, kind := range []SystemKind{KindDynaMast, KindMultiMaster} {
			res, err := RunOne(kind, wl, env, scale.opts())
			if err != nil {
				return nil, err
			}
			ratio := 0.0
			if kind == KindDynaMast {
				dm = res.Throughput
			} else {
				mm = res.Throughput
				if mm > 0 {
					ratio = dm / mm
				}
			}
			exp.Rows = append(exp.Rows, Row{
				Label:  fmt.Sprintf("%s oneway=%s", kind, oneWay),
				Values: map[string]float64{"txn_per_s": res.Throughput, "dm_over_mm": ratio},
			})
		}
	}
	return exp, nil
}

// FigVersionCapAblation sweeps the MVCC version-chain cap, the paper's
// empirically chosen 4-version setting (§V-A1): too few versions starve
// long snapshot reads of visible versions under write pressure; more
// versions cost memory with no benefit at these read lengths.
func FigVersionCapAblation(scale Scale) (*Experiment, error) {
	exp := &Experiment{ID: "FigVerCap", Caption: "DynaMast throughput vs MVCC version cap (YCSB 50/50)",
		Columns: []string{"txn_per_s", "errors"}}
	for _, cap := range []int{1, 2, 4, 8} {
		wl := workload.NewYCSB(workload.YCSBConfig{Keys: scale.Keys, RMWPercent: 50})
		env := DefaultEnv(4)
		env.Seed = scale.Seed
		c, err := core.NewCluster(core.Config{
			Sites:       env.Sites,
			Partitioner: wl.Partitioner(),
			Weights:     WeightsFor(wl),
			Network:     env.Network,
			ExecSlots:   env.ExecSlots,
			Costs:       env.Costs,
			MaxVersions: cap,
			Seed:        env.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, t := range wl.Tables() {
			c.CreateTable(t)
		}
		c.Load(wl.LoadRows())
		res := Run(c, wl, scale.opts())
		c.Close()
		exp.Rows = append(exp.Rows, Row{
			Label:  fmt.Sprintf("versions=%d", cap),
			Values: map[string]float64{"txn_per_s": res.Throughput, "errors": float64(res.Errors)},
		})
	}
	return exp, nil
}

// WriteCSV renders the experiment as CSV (one row per config, one column
// per metric) for plotting.
func (e *Experiment) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"config"}, e.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range e.Rows {
		rec := make([]string, 0, len(header))
		rec = append(rec, r.Label)
		for _, c := range e.Columns {
			rec = append(rec, strconv.FormatFloat(r.Values[c], 'f', 3, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
