package workload

import (
	"math"
	"math/rand"
)

// Zipf draws from a Zipfian distribution over [0, n) with the YCSB-style
// skew parameter theta in (0, 1) — the paper's skewed workloads use
// theta = 0.75. (math/rand's Zipf requires exponent > 1, so this is the
// classic Gray et al. generator supporting theta < 1.)
type Zipf struct {
	r                *rand.Rand
	n                uint64
	theta            float64
	alpha, zetan     float64
	eta, zeta2, half float64
}

// NewZipf builds a generator over [0, n) with the given theta.
func NewZipf(r *rand.Rand, n uint64, theta float64) *Zipf {
	z := &Zipf{r: r, n: n, theta: theta}
	z.zeta2 = zeta(2, theta)
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	z.half = 1 + math.Pow(0.5, theta)
	return z
}

// zeta computes the generalized harmonic number H_{n,theta}.
func zeta(n uint64, theta float64) float64 {
	var sum float64
	// Cap the exact sum for very large n; the tail contributes little and
	// the workloads here use n <= ~1M.
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value in [0, n). Rank 0 is the hottest.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// Binomial draws the number of successes in trials Bernoulli(p) trials —
// the paper's neighbour-partition selector samples Binomial(5, 0.5) and
// offsets from its center (Appendix C).
func Binomial(r *rand.Rand, trials int, p float64) int {
	s := 0
	for i := 0; i < trials; i++ {
		if r.Float64() < p {
			s++
		}
	}
	return s
}

// NeighborOffset draws the paper's neighbour-partition offset
// (Appendix C): a Binomial(5, 0.5) sample re-centred so that three
// successes select the base partition, one success selects two partitions
// before it, and five successes two after (the paper's Figure 6a example).
func NeighborOffset(r *rand.Rand) int {
	return Binomial(r, 5, 0.5) - 3
}

// clampPartition wraps an offset base partition into [0, n).
func clampPartition(base int64, n uint64) uint64 {
	m := int64(n)
	v := base % m
	if v < 0 {
		v += m
	}
	return uint64(v)
}
