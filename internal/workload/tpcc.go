package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// TPC-C table names.
const (
	TableWarehouse = "warehouse"
	TableDistrict  = "district"
	TableCustomer  = "customer"
	TableItem      = "item"
	TableStock     = "stock"
	TableOrder     = "order"
	TableOrderLine = "orderline"
	TableNewOrder  = "neworder"
	TableHistory   = "history"
)

// Key-encoding constants. Orders are keyed under their district with a
// bounded order-id space; order lines under their order.
const (
	maxOrders     = 1 << 22
	maxOrderLines = 16
	historyPerWh  = 1 << 32
	itemPartition = uint64(1) << 40 // partition-id space for the item table
	itemsPerIPart = 1000

	// Partition-group layout. A warehouse's rows split into sub-warehouse
	// partition groups — the warehouse row, one group per district
	// (district+customer+order+orderline+neworder+history), and a fixed
	// number of stock blocks — so DynaMast's co-access statistics can
	// anchor a warehouse's groups to one site while the balance feature
	// still resists collapsing whole warehouses together.
	whPartStride = 64
	stockBlocks  = 16
)

// TPCCConfig parameterizes the workload. The paper runs 10 warehouses and
// 100k items on 8 sites; defaults here are scaled to this reproduction.
type TPCCConfig struct {
	Warehouses    int // default 10
	Districts     int // per warehouse, default 10
	CustomersPerD int // default 100 (scaled from 3000)
	Items         int // default 2000 (scaled from 100k)
	InitialOrders int // per district, default 30

	// Mix percentages; the remainder after NewOrder+Payment is
	// Stock-Level. Paper default: 45/45/10.
	NewOrderPercent int
	PaymentPercent  int

	// CrossNewOrderPct is the share of New-Order transactions with at
	// least one remote supply warehouse (paper default 10; §VI-B3 sweeps
	// 0-33). CrossPaymentPct is the share of Payments updating a remote
	// warehouse and district (paper default 15).
	CrossNewOrderPct int
	CrossPaymentPct  int
}

func (c TPCCConfig) withDefaults() TPCCConfig {
	if c.Warehouses == 0 {
		c.Warehouses = 10
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.CustomersPerD == 0 {
		c.CustomersPerD = 100
	}
	if c.Items == 0 {
		c.Items = 2000
	}
	if c.InitialOrders == 0 {
		c.InitialOrders = 30
	}
	if c.NewOrderPercent == 0 && c.PaymentPercent == 0 {
		c.NewOrderPercent, c.PaymentPercent = 45, 45
	}
	if c.CrossNewOrderPct == 0 {
		c.CrossNewOrderPct = 10
	}
	if c.CrossPaymentPct == 0 {
		c.CrossPaymentPct = 15
	}
	return c
}

// TPCC implements Workload with the three transaction types the paper
// evaluates: New-Order and Payment (update-intensive) and Stock-Level
// (read-only) — the bulk of the workload and of its distributed
// transactions.
type TPCC struct {
	cfg TPCCConfig
	// nextOID allocates order ids per district (reconnaissance stand-in:
	// write sets must be known at submission, so order ids are drawn
	// before the transaction starts).
	nextOID []atomic.Uint64
	histSeq atomic.Uint64
}

// NewTPCC builds the workload.
func NewTPCC(cfg TPCCConfig) *TPCC {
	cfg = cfg.withDefaults()
	w := &TPCC{cfg: cfg}
	w.nextOID = make([]atomic.Uint64, cfg.Warehouses*cfg.Districts)
	for d := range w.nextOID {
		w.nextOID[d].Store(uint64(cfg.InitialOrders))
	}
	return w
}

// Name implements Workload.
func (w *TPCC) Name() string {
	return fmt.Sprintf("tpcc-%d-%d-%d", w.cfg.NewOrderPercent, w.cfg.PaymentPercent,
		100-w.cfg.NewOrderPercent-w.cfg.PaymentPercent)
}

// Config returns the effective configuration.
func (w *TPCC) Config() TPCCConfig { return w.cfg }

// Tables implements Workload.
func (w *TPCC) Tables() []string {
	return []string{TableWarehouse, TableDistrict, TableCustomer, TableItem,
		TableStock, TableOrder, TableOrderLine, TableNewOrder, TableHistory}
}

// Key encoders.

func (w *TPCC) dKey(wh, d int) uint64 { return uint64(wh*w.cfg.Districts + d) }
func (w *TPCC) cKey(wh, d, c int) uint64 {
	return w.dKey(wh, d)*uint64(w.cfg.CustomersPerD) + uint64(c)
}
func (w *TPCC) sKey(wh, i int) uint64 { return uint64(wh)*uint64(w.cfg.Items) + uint64(i) }
func (w *TPCC) oKey(wh, d int, o uint64) uint64 {
	return w.dKey(wh, d)*maxOrders + o
}
func (w *TPCC) olKey(okey uint64, line int) uint64 {
	return okey*maxOrderLines + uint64(line)
}
func (w *TPCC) hKey(wh, d int, seq uint64) uint64 {
	return w.dKey(wh, d)*historyPerWh + seq
}

// Partitioner implements Workload: rows map to sub-warehouse partition
// groups — warehouse wh's groups occupy ids [wh*whPartStride,
// (wh+1)*whPartStride): the warehouse row (sub 0), one group per district
// (sub 1+d, carrying that district's customers, orders, order lines,
// new-orders and history), and stockBlocks stock groups. Item rows map to
// their own static partition space.
func (w *TPCC) Partitioner() sitemgr.Partitioner {
	d := uint64(w.cfg.Districts)
	cust := uint64(w.cfg.CustomersPerD)
	items := uint64(w.cfg.Items)
	itemsPerBlock := (items + stockBlocks - 1) / stockBlocks
	group := func(wh, sub uint64) uint64 { return wh*whPartStride + sub }
	return func(ref storage.RowRef) uint64 {
		switch ref.Table {
		case TableWarehouse:
			return group(ref.Key, 0)
		case TableDistrict:
			return group(ref.Key/d, 1+ref.Key%d)
		case TableCustomer:
			dkey := ref.Key / cust
			return group(dkey/d, 1+dkey%d)
		case TableStock:
			return group(ref.Key/items, 1+d+(ref.Key%items)/itemsPerBlock)
		case TableOrder, TableNewOrder:
			dkey := ref.Key / maxOrders
			return group(dkey/d, 1+dkey%d)
		case TableOrderLine:
			dkey := ref.Key / maxOrderLines / maxOrders
			return group(dkey/d, 1+dkey%d)
		case TableHistory:
			// History rows are insert-only; group them with the paying
			// customer's district so a cross-warehouse Payment's write
			// set never spans two warehouse-row groups.
			dkey := ref.Key / historyPerWh
			return group(dkey/d, 1+dkey%d)
		case TableItem:
			return itemPartition + ref.Key/itemsPerIPart
		}
		return 0
	}
}

// Placement implements Workload: whole warehouses round-robin across sites
// (the "partition by warehouse" strategy Schism confirms minimizes
// distributed transactions); item partitions are replicated so their
// placement is immaterial.
func (w *TPCC) Placement(m int) func(part uint64) int {
	return func(part uint64) int {
		if part >= itemPartition {
			return 0
		}
		return int(part/whPartStride) % m
	}
}

// ReplicatedTables implements Workload: the item table is static and
// read-only, so partitioned systems replicate it (as the paper's
// partition-store does for static read-only tables).
func (w *TPCC) ReplicatedTables() map[string]bool {
	return map[string]bool{TableItem: true}
}

// Row builders. Rows carry the fields the three transactions touch, in
// fixed binary layouts.

func warehouseRow(ytd uint64) []byte {
	row := make([]byte, 32)
	putU64(row, 0, ytd)
	putU64(row, 8, 7) // tax (percent)
	return row
}

func districtRow(nextOID, ytd uint64) []byte {
	row := make([]byte, 32)
	putU64(row, 0, nextOID)
	putU64(row, 8, ytd)
	return row
}

func customerRow(balance, payments uint64) []byte {
	row := make([]byte, 64) // padded toward a realistic customer tuple
	putU64(row, 0, balance)
	putU64(row, 8, payments)
	return row
}

func itemRow(price uint64) []byte {
	row := make([]byte, 24)
	putU64(row, 0, price)
	return row
}

func stockRow(qty, ytd uint64) []byte {
	row := make([]byte, 32)
	putU64(row, 0, qty)
	putU64(row, 8, ytd)
	return row
}

func orderRow(cust uint64, olCnt int) []byte {
	row := make([]byte, 24)
	putU64(row, 0, cust)
	putU64(row, 8, uint64(olCnt))
	return row
}

func orderLineRow(item, supplyWh, qty uint64) []byte {
	row := make([]byte, 32)
	putU64(row, 0, item)
	putU64(row, 8, supplyWh)
	putU64(row, 16, qty)
	return row
}

// LoadRows implements Workload.
func (w *TPCC) LoadRows() []systems.LoadRow {
	cfg := w.cfg
	var rows []systems.LoadRow
	add := func(table string, key uint64, data []byte) {
		rows = append(rows, systems.LoadRow{Ref: storage.RowRef{Table: table, Key: key}, Data: data})
	}
	for i := 0; i < cfg.Items; i++ {
		add(TableItem, uint64(i), itemRow(uint64(100+i%900)))
	}
	r := rand.New(rand.NewSource(7))
	for wh := 0; wh < cfg.Warehouses; wh++ {
		add(TableWarehouse, uint64(wh), warehouseRow(0))
		for i := 0; i < cfg.Items; i++ {
			add(TableStock, w.sKey(wh, i), stockRow(uint64(10+r.Intn(91)), 0))
		}
		for d := 0; d < cfg.Districts; d++ {
			add(TableDistrict, w.dKey(wh, d), districtRow(uint64(cfg.InitialOrders), 0))
			for c := 0; c < cfg.CustomersPerD; c++ {
				add(TableCustomer, w.cKey(wh, d, c), customerRow(1000, 0))
			}
			for o := uint64(0); o < uint64(cfg.InitialOrders); o++ {
				okey := w.oKey(wh, d, o)
				olCnt := 5 + r.Intn(11)
				cust := w.cKey(wh, d, r.Intn(cfg.CustomersPerD))
				add(TableOrder, okey, orderRow(cust, olCnt))
				for line := 0; line < olCnt; line++ {
					item := uint64(r.Intn(cfg.Items))
					add(TableOrderLine, w.olKey(okey, line),
						orderLineRow(item, uint64(wh), uint64(1+r.Intn(10))))
				}
			}
		}
	}
	return rows
}

// tpccGen is one client's transaction stream. TPC-C clients are bound to a
// home warehouse and district.
type tpccGen struct {
	w    *TPCC
	r    *rand.Rand
	home int // warehouse
}

// NewGenerator implements Workload.
func (w *TPCC) NewGenerator(client int, seed int64) Generator {
	r := rand.New(rand.NewSource(seed ^ int64(client)*0x5851F42D4C957F2D))
	return &tpccGen{w: w, r: r, home: client % w.cfg.Warehouses}
}

// Next implements Generator.
func (g *tpccGen) Next() Txn {
	p := g.r.Intn(100)
	switch {
	case p < g.w.cfg.NewOrderPercent:
		return g.newOrder()
	case p < g.w.cfg.NewOrderPercent+g.w.cfg.PaymentPercent:
		return g.payment()
	default:
		return g.stockLevel()
	}
}

// otherWarehouse picks a warehouse different from wh.
func (g *tpccGen) otherWarehouse(wh int) int {
	if g.w.cfg.Warehouses == 1 {
		return wh
	}
	o := g.r.Intn(g.w.cfg.Warehouses - 1)
	if o >= wh {
		o++
	}
	return o
}

// newOrder builds a New-Order transaction: 5-15 order lines, each item's
// stock read and updated; the district's next-order-id advanced; order,
// order-line and new-order rows inserted. CrossNewOrderPct of transactions
// source at least one line from a remote warehouse.
func (g *tpccGen) newOrder() Txn {
	w, cfg, r := g.w, g.w.cfg, g.r
	wh := g.home
	d := r.Intn(cfg.Districts)
	cust := w.cKey(wh, d, r.Intn(cfg.CustomersPerD))
	olCnt := 5 + r.Intn(11)
	cross := r.Intn(100) < cfg.CrossNewOrderPct

	type line struct {
		item     int
		supplyWh int
		qty      uint64
	}
	lines := make([]line, olCnt)
	seen := map[int]bool{}
	for i := range lines {
		it := r.Intn(cfg.Items)
		for seen[it] {
			it = r.Intn(cfg.Items)
		}
		seen[it] = true
		supply := wh
		// The first line of a cross-warehouse New-Order is remote.
		if cross && i == 0 {
			supply = g.otherWarehouse(wh)
		}
		lines[i] = line{item: it, supplyWh: supply, qty: uint64(1 + r.Intn(10))}
	}

	oid := w.nextOID[w.dKey(wh, d)].Add(1) - 1
	okey := w.oKey(wh, d, oid)

	ws := make([]storage.RowRef, 0, 3+2*olCnt)
	ws = append(ws,
		storage.RowRef{Table: TableDistrict, Key: w.dKey(wh, d)},
		storage.RowRef{Table: TableOrder, Key: okey},
		storage.RowRef{Table: TableNewOrder, Key: okey},
	)
	for i, ln := range lines {
		ws = append(ws,
			storage.RowRef{Table: TableStock, Key: w.sKey(ln.supplyWh, ln.item)},
			storage.RowRef{Table: TableOrderLine, Key: w.olKey(okey, i)},
		)
	}

	return Txn{
		Kind:     "neworder",
		Update:   true,
		WriteSet: ws,
		Run: func(tx systems.Tx) error {
			// Read warehouse tax and district state.
			if _, ok := tx.Read(storage.RowRef{Table: TableWarehouse, Key: uint64(wh)}); !ok {
				return fmt.Errorf("tpcc: warehouse %d missing", wh)
			}
			dref := storage.RowRef{Table: TableDistrict, Key: w.dKey(wh, d)}
			drow, ok := tx.Read(dref)
			if !ok {
				return fmt.Errorf("tpcc: district missing")
			}
			next := getU64(drow, 0)
			if next < oid+1 {
				next = oid + 1
			}
			if err := tx.Write(dref, districtRow(next, getU64(drow, 8))); err != nil {
				return err
			}
			if _, ok := tx.Read(storage.RowRef{Table: TableCustomer, Key: cust}); !ok {
				return fmt.Errorf("tpcc: customer missing")
			}
			var total uint64
			for i, ln := range lines {
				irow, ok := tx.Read(storage.RowRef{Table: TableItem, Key: uint64(ln.item)})
				if !ok {
					return fmt.Errorf("tpcc: item %d missing", ln.item)
				}
				price := getU64(irow, 0)
				sref := storage.RowRef{Table: TableStock, Key: w.sKey(ln.supplyWh, ln.item)}
				srow, ok := tx.Read(sref)
				if !ok {
					return fmt.Errorf("tpcc: stock w%d i%d missing", ln.supplyWh, ln.item)
				}
				qty := getU64(srow, 0)
				if qty >= ln.qty+10 {
					qty -= ln.qty
				} else {
					qty = qty + 91 - ln.qty
				}
				if err := tx.Write(sref, stockRow(qty, getU64(srow, 8)+ln.qty)); err != nil {
					return err
				}
				if err := tx.Write(storage.RowRef{Table: TableOrderLine, Key: w.olKey(okey, i)},
					orderLineRow(uint64(ln.item), uint64(ln.supplyWh), ln.qty)); err != nil {
					return err
				}
				total += price * ln.qty
			}
			if err := tx.Write(storage.RowRef{Table: TableOrder, Key: okey}, orderRow(cust, olCnt)); err != nil {
				return err
			}
			no := make([]byte, 16)
			putU64(no, 0, total)
			return tx.Write(storage.RowRef{Table: TableNewOrder, Key: okey}, no)
		},
	}
}

// payment builds a Payment transaction: increment warehouse and district
// payment totals, update the customer's balance, insert a history row.
// CrossPaymentPct of Payments update a remote warehouse and district.
func (g *tpccGen) payment() Txn {
	w, cfg, r := g.w, g.w.cfg, g.r
	wh := g.home
	payWh := wh
	if r.Intn(100) < cfg.CrossPaymentPct {
		payWh = g.otherWarehouse(wh)
	}
	d := r.Intn(cfg.Districts)
	cust := w.cKey(wh, d, r.Intn(cfg.CustomersPerD))
	amount := uint64(1 + r.Intn(5000))
	hkey := w.hKey(wh, d, w.histSeq.Add(1))

	wref := storage.RowRef{Table: TableWarehouse, Key: uint64(payWh)}
	dref := storage.RowRef{Table: TableDistrict, Key: w.dKey(payWh, d)}
	cref := storage.RowRef{Table: TableCustomer, Key: cust}
	href := storage.RowRef{Table: TableHistory, Key: hkey}
	ws := []storage.RowRef{wref, dref, cref, href}

	return Txn{
		Kind:     "payment",
		Update:   true,
		WriteSet: ws,
		Run: func(tx systems.Tx) error {
			wrow, ok := tx.Read(wref)
			if !ok {
				return fmt.Errorf("tpcc: warehouse %d missing", payWh)
			}
			if err := tx.Write(wref, warehouseRow(getU64(wrow, 0)+amount)); err != nil {
				return err
			}
			drow, ok := tx.Read(dref)
			if !ok {
				return fmt.Errorf("tpcc: district missing")
			}
			if err := tx.Write(dref, districtRow(getU64(drow, 0), getU64(drow, 8)+amount)); err != nil {
				return err
			}
			crow, ok := tx.Read(cref)
			if !ok {
				return fmt.Errorf("tpcc: customer missing")
			}
			bal := getU64(crow, 0)
			if bal >= amount {
				bal -= amount
			}
			if err := tx.Write(cref, customerRow(bal, getU64(crow, 8)+1)); err != nil {
				return err
			}
			h := make([]byte, 24)
			putU64(h, 0, amount)
			return tx.Write(href, h)
		},
	}
}

// stockLevel builds the read-only Stock-Level transaction: examine the
// district's most recent 20 orders' lines and count stock below a
// threshold. Lines sourced from remote warehouses make the read set span
// sites in partitioned systems.
func (g *tpccGen) stockLevel() Txn {
	w, cfg, r := g.w, g.w.cfg, g.r
	wh := g.home
	d := r.Intn(cfg.Districts)
	threshold := uint64(10 + r.Intn(11))
	dkey := w.dKey(wh, d)

	return Txn{
		Kind:     "stocklevel",
		ReadHint: []storage.RowRef{{Table: TableDistrict, Key: dkey}},
		Run: func(tx systems.Tx) error {
			drow, ok := tx.Read(storage.RowRef{Table: TableDistrict, Key: dkey})
			if !ok {
				return fmt.Errorf("tpcc: district missing")
			}
			next := getU64(drow, 0)
			lo := uint64(0)
			if next > 20 {
				lo = next - 20
			}
			// Scan the last orders' lines, then probe stock for each
			// distinct item.
			loKey := w.olKey(w.oKey(wh, d, lo), 0)
			hiKey := w.olKey(w.oKey(wh, d, next), 0)
			items := make(map[uint64]uint64) // item -> supply warehouse
			for _, kv := range tx.Scan(TableOrderLine, loKey, hiKey) {
				items[getU64(kv.Value, 0)] = getU64(kv.Value, 8)
			}
			low := 0
			for item, supply := range items {
				srow, ok := tx.Read(storage.RowRef{Table: TableStock, Key: w.sKey(int(supply), int(item))})
				if !ok {
					continue
				}
				if getU64(srow, 0) < threshold {
					low++
				}
			}
			_ = low
			return nil
		},
	}
}
