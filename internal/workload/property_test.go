package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynamast/internal/storage"
)

// Property: every TPC-C key encoder round-trips through the partitioner to
// the warehouse that produced it, for arbitrary in-range inputs.
func TestQuickTPCCKeysPartitionToTheirWarehouse(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 16, Districts: 10, CustomersPerD: 100, Items: 2000})
	p := w.Partitioner()
	f := func(whRaw, dRaw, cRaw, iRaw uint16, oRaw uint32, lineRaw uint8) bool {
		wh := int(whRaw) % 16
		d := int(dRaw) % 10
		c := int(cRaw) % 100
		i := int(iRaw) % 2000
		o := uint64(oRaw) % maxOrders
		line := int(lineRaw) % maxOrderLines
		okey := w.oKey(wh, d, o)
		refs := []storage.RowRef{
			{Table: TableWarehouse, Key: uint64(wh)},
			{Table: TableDistrict, Key: w.dKey(wh, d)},
			{Table: TableCustomer, Key: w.cKey(wh, d, c)},
			{Table: TableStock, Key: w.sKey(wh, i)},
			{Table: TableOrder, Key: okey},
			{Table: TableNewOrder, Key: okey},
			{Table: TableOrderLine, Key: w.olKey(okey, line)},
			{Table: TableHistory, Key: w.hKey(wh, d, uint64(oRaw))},
		}
		for _, ref := range refs {
			if int(p(ref)/whPartStride) != wh {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: district-scoped tables (customer, order, order line, new
// order, history) land in the same partition group as their district.
func TestQuickTPCCDistrictGrouping(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 8, Districts: 10, CustomersPerD: 50, Items: 1000})
	p := w.Partitioner()
	f := func(whRaw, dRaw, cRaw uint16, oRaw uint32) bool {
		wh := int(whRaw) % 8
		d := int(dRaw) % 10
		c := int(cRaw) % 50
		o := uint64(oRaw) % maxOrders
		want := p(storage.RowRef{Table: TableDistrict, Key: w.dKey(wh, d)})
		okey := w.oKey(wh, d, o)
		return p(storage.RowRef{Table: TableCustomer, Key: w.cKey(wh, d, c)}) == want &&
			p(storage.RowRef{Table: TableOrder, Key: okey}) == want &&
			p(storage.RowRef{Table: TableOrderLine, Key: w.olKey(okey, 3)}) == want &&
			p(storage.RowRef{Table: TableHistory, Key: w.hKey(wh, d, uint64(oRaw))}) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the YCSB placement assigns every partition a site in [0, m)
// and assigns whole placement blocks to a single site.
func TestQuickYCSBPlacementBlocks(t *testing.T) {
	f := func(keysRaw uint16, mRaw, partRaw uint8) bool {
		keys := (uint64(keysRaw)%1000 + 10) * 100
		m := int(mRaw)%15 + 1
		w := NewYCSB(YCSBConfig{Keys: keys})
		place := w.Placement(m)
		part := uint64(partRaw) % w.Partitions()
		site := place(part)
		if site < 0 || site >= m {
			return false
		}
		// Same block => same site.
		blockStart := part / PlacementBlock * PlacementBlock
		return place(blockStart) == site
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated YCSB write sets always reference keys inside the key
// space, for arbitrary configurations.
func TestQuickYCSBWriteSetsInRange(t *testing.T) {
	f := func(seed int64, keysRaw uint16, mix uint8) bool {
		keys := (uint64(keysRaw)%500 + 5) * 100
		w := NewYCSB(YCSBConfig{Keys: keys, RMWPercent: int(mix)%100 + 1})
		g := w.NewGenerator(int(seed)%64, seed)
		for i := 0; i < 20; i++ {
			txn := g.Next()
			for _, ref := range txn.WriteSet {
				if ref.Key >= keys {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SmallBank transfers preserve the total balance in a model
// execution for any interleaving of generated transactions.
func TestQuickSmallBankConservation(t *testing.T) {
	w := NewSmallBank(SmallBankConfig{Customers: 200})
	rows := w.LoadRows()
	tx := newFakeTx(rows)
	var initial uint64
	for _, r := range rows {
		if r.Ref.Table == TableChecking {
			initial += getU64(r.Data, 0)
		}
	}
	g := w.NewGenerator(1, 99)
	moved := 0
	for i := 0; i < 300; i++ {
		txn := g.Next()
		if txn.Kind != "multi-update" {
			continue
		}
		moved++
		if err := txn.Run(tx); err != nil {
			t.Fatal(err)
		}
		// Fold writes back into the model state.
		for ref, data := range tx.writes {
			tx.data[ref] = data
		}
		tx.writes = map[storage.RowRef][]byte{}
	}
	if moved == 0 {
		t.Fatal("no transfers generated")
	}
	var final uint64
	for ref, data := range tx.data {
		if ref.Table == TableChecking {
			final += getU64(data, 0)
		}
	}
	if final != initial {
		t.Fatalf("checking total changed: %d -> %d", initial, final)
	}
}

// Property: the zipfian generator is deterministic per seed and bounded.
func TestQuickZipfDeterministic(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := uint64(nRaw)%1000 + 2
		a := NewZipf(rand.New(rand.NewSource(seed)), n, 0.75)
		b := NewZipf(rand.New(rand.NewSource(seed)), n, 0.75)
		for i := 0; i < 50; i++ {
			va, vb := a.Next(), b.Next()
			if va != vb || va >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
