package workload

import (
	"fmt"
	"math/rand"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// YCSBTable is the single YCSB table name.
const YCSBTable = "usertable"

// YCSBConfig parameterizes the paper's YCSB variant (Appendix C): the key
// space is divided into partitions of 100 contiguous keys; multi-partition
// read-modify-write transactions update three keys drawn from neighbouring
// partitions via a re-centred Binomial(5, 0.5); scan transactions read all
// keys of 2-10 consecutive partitions (200-1000 keys); clients exhibit
// affinity, issuing a bounded number of transactions against a correlated
// partition set before being replaced.
type YCSBConfig struct {
	// Keys is the number of rows (default 100k, a scaled-down stand-in
	// for the paper's 5 GB database).
	Keys uint64
	// PartitionSize is the contiguous keys per partition (default 100).
	PartitionSize uint64
	// RMWPercent is the share of read-modify-write transactions; the rest
	// are scans (paper mixes: 50 and 90).
	RMWPercent int
	// ValueSize is the payload bytes per row (default 100).
	ValueSize int
	// Zipfian selects skewed base-partition access with Theta.
	Zipfian bool
	// Theta is the Zipfian skew (default 0.75, the paper's rho).
	Theta float64
	// AffinityTxns, when nonzero, pins a client to one correlated
	// partition region for that many transactions before redrawing it
	// (the paper's client-affinity churn; its adaptivity experiment uses
	// 25). Zero draws the base partition per transaction from the access
	// distribution, which Appendix C specifies for RMW and scan base
	// selection — the paper reports affinity changes throughput by <2%.
	AffinityTxns int
	// Shuffled randomizes partition correlations: the neighbour algorithm
	// runs over a seeded permutation of partition ids, so range-based
	// placement no longer matches the workload (the paper's
	// changing-workload experiment, Figure 5b).
	Shuffled bool
	// ShuffleSeed seeds the permutation when Shuffled is set.
	ShuffleSeed int64
}

// withDefaults fills zero fields.
func (c YCSBConfig) withDefaults() YCSBConfig {
	if c.Keys == 0 {
		c.Keys = 100_000
	}
	if c.PartitionSize == 0 {
		c.PartitionSize = 100
	}
	if c.RMWPercent == 0 {
		c.RMWPercent = 50
	}
	if c.ValueSize == 0 {
		c.ValueSize = 100
	}
	if c.Theta == 0 {
		c.Theta = 0.75
	}
	return c
}

// YCSB implements Workload.
type YCSB struct {
	cfg   YCSBConfig
	parts uint64
	perm  []uint64 // partition permutation (identity unless Shuffled)
}

// NewYCSB builds the workload.
func NewYCSB(cfg YCSBConfig) *YCSB {
	cfg = cfg.withDefaults()
	w := &YCSB{cfg: cfg, parts: cfg.Keys / cfg.PartitionSize}
	w.perm = make([]uint64, w.parts)
	for i := range w.perm {
		w.perm[i] = uint64(i)
	}
	if cfg.Shuffled {
		r := rand.New(rand.NewSource(cfg.ShuffleSeed))
		r.Shuffle(len(w.perm), func(i, j int) { w.perm[i], w.perm[j] = w.perm[j], w.perm[i] })
	}
	return w
}

// Name implements Workload.
func (w *YCSB) Name() string {
	mix := fmt.Sprintf("%d-%d", w.cfg.RMWPercent, 100-w.cfg.RMWPercent)
	dist := "uniform"
	if w.cfg.Zipfian {
		dist = "zipfian"
	}
	return fmt.Sprintf("ycsb-%s-%s", mix, dist)
}

// Tables implements Workload.
func (w *YCSB) Tables() []string { return []string{YCSBTable} }

// Partitions returns the number of partitions.
func (w *YCSB) Partitions() uint64 { return w.parts }

// LoadRows implements Workload.
func (w *YCSB) LoadRows() []systems.LoadRow {
	rows := make([]systems.LoadRow, 0, w.cfg.Keys)
	for k := uint64(0); k < w.cfg.Keys; k++ {
		val := make([]byte, w.cfg.ValueSize)
		putU64(val, 0, k)
		rows = append(rows, systems.LoadRow{
			Ref:  storage.RowRef{Table: YCSBTable, Key: k},
			Data: val,
		})
	}
	return rows
}

// Partitioner implements Workload: partitions of PartitionSize contiguous
// keys.
func (w *YCSB) Partitioner() sitemgr.Partitioner {
	size := w.cfg.PartitionSize
	return func(ref storage.RowRef) uint64 { return ref.Key / size }
}

// PlacementBlock is the contiguous-partition block size of the static
// range placement: blocks of ten 100-key ranges are assigned round-robin
// to sites. The block size sits just above the workload's correlation
// neighbourhood (offsets within ±3 partitions, scans of 2-10 partitions),
// the granularity a Schism-style partitioner balancing load against
// co-access would arrive at; transactions whose partition set straddles a
// block boundary become distributed in the partitioned baselines.
const PlacementBlock = 50

// Placement implements Workload: block-granular range partitioning.
func (w *YCSB) Placement(m int) func(part uint64) int {
	return func(part uint64) int {
		return int(part/PlacementBlock) % m
	}
}

// ReplicatedTables implements Workload.
func (w *YCSB) ReplicatedTables() map[string]bool { return nil }

// ycsbGen is one client's stream.
type ycsbGen struct {
	w      *YCSB
	r      *rand.Rand
	zipf   *Zipf
	anchor uint64 // affinity anchor partition
	left   int    // txns left in the affinity period
}

// NewGenerator implements Workload.
func (w *YCSB) NewGenerator(client int, seed int64) Generator {
	r := rand.New(rand.NewSource(seed ^ int64(client)*0x5851F42D4C957F2D))
	g := &ycsbGen{w: w, r: r}
	if w.cfg.Zipfian {
		g.zipf = NewZipf(r, w.parts, w.cfg.Theta)
	}
	g.redraw()
	return g
}

// redraw picks a new affinity anchor.
func (g *ycsbGen) redraw() {
	g.anchor = g.drawBase()
	g.left = g.w.cfg.AffinityTxns
}

// drawBase draws a base partition from the access distribution.
func (g *ycsbGen) drawBase() uint64 {
	if g.zipf != nil {
		return g.zipf.Next()
	}
	return uint64(g.r.Intn(int(g.w.parts)))
}

// base returns this transaction's base partition: the affinity anchor when
// affinity is configured, a fresh distribution draw otherwise.
func (g *ycsbGen) base() uint64 {
	if g.w.cfg.AffinityTxns > 0 {
		return g.anchor
	}
	return g.drawBase()
}

// neighbor maps a logical partition index to a concrete partition id via
// the (possibly shuffled) permutation.
func (g *ycsbGen) neighbor(base uint64, offset int) uint64 {
	idx := clampPartition(int64(base)+int64(offset), g.w.parts)
	return g.w.perm[idx]
}

// keyIn draws a uniform key within partition part.
func (g *ycsbGen) keyIn(part uint64) uint64 {
	size := g.w.cfg.PartitionSize
	return part*size + uint64(g.r.Intn(int(size)))
}

// Next implements Generator.
func (g *ycsbGen) Next() Txn {
	if g.w.cfg.AffinityTxns > 0 && g.left <= 0 {
		g.redraw() // client replaced by one with a fresh partition set
	}
	g.left--
	if g.r.Intn(100) < g.w.cfg.RMWPercent {
		return g.rmw()
	}
	return g.scan()
}

// rmw builds a three-key read-modify-write over the base partition and two
// neighbours.
func (g *ycsbGen) rmw() Txn {
	base := g.base()
	keys := []uint64{
		g.keyIn(g.w.perm[base]),
		g.keyIn(g.neighbor(base, NeighborOffset(g.r))),
		g.keyIn(g.neighbor(base, NeighborOffset(g.r))),
	}
	ws := make([]storage.RowRef, len(keys))
	for i, k := range keys {
		ws[i] = storage.RowRef{Table: YCSBTable, Key: k}
	}
	valSize := g.w.cfg.ValueSize
	stamp := g.r.Uint64()
	return Txn{
		Kind:     "rmw",
		Update:   true,
		WriteSet: ws,
		Run: func(tx systems.Tx) error {
			for _, ref := range ws {
				old, ok := tx.Read(ref)
				val := make([]byte, valSize)
				if ok && len(old) >= 16 {
					copy(val, old)
				}
				putU64(val, 8, stamp)
				if err := tx.Write(ref, val); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

// scan builds a 2-10 partition (200-1000 key) read-only scan starting at
// the base partition. When correlations are shuffled the scan reads each
// correlated partition's range individually.
func (g *ycsbGen) scan() Txn {
	base := g.base()
	k := 2 + g.r.Intn(9)
	size := g.w.cfg.PartitionSize
	parts := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		parts = append(parts, g.neighbor(base, i))
	}
	return Txn{
		Kind:     "scan",
		ReadHint: []storage.RowRef{{Table: YCSBTable, Key: parts[0] * size}},
		Run: func(tx systems.Tx) error {
			total := 0
			for _, p := range parts {
				rows := tx.Scan(YCSBTable, p*size, (p+1)*size)
				total += len(rows)
			}
			if total == 0 {
				return fmt.Errorf("ycsb: scan of %d partitions returned nothing", len(parts))
			}
			return nil
		},
	}
}
