package workload

import (
	"math"
	"math/rand"
	"testing"

	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	z := NewZipf(r, 1000, 0.75)
	counts := make([]int, 1000)
	const n = 50_000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be far hotter than the median rank.
	if counts[0] < 20*counts[500] {
		t.Fatalf("insufficient skew: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// The head (top 10%) should carry the majority of accesses at 0.75.
	head := 0
	for i := 0; i < 100; i++ {
		head += counts[i]
	}
	if float64(head)/n < 0.4 {
		t.Fatalf("head weight = %.2f, want >= 0.4", float64(head)/n)
	}
}

func TestZipfUniformishTail(t *testing.T) {
	// Small theta approaches uniform; sanity-check no crash and coverage.
	r := rand.New(rand.NewSource(2))
	z := NewZipf(r, 10, 0.1)
	seen := map[uint64]bool{}
	for i := 0; i < 10_000; i++ {
		seen[z.Next()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("only %d of 10 values drawn", len(seen))
	}
}

func TestBinomialMean(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sum := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		s := Binomial(r, 5, 0.5)
		if s < 0 || s > 5 {
			t.Fatalf("binomial out of range: %d", s)
		}
		sum += s
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Fatalf("binomial mean = %.3f, want 2.5", mean)
	}
}

func TestNeighborOffsetRange(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	counts := map[int]int{}
	for i := 0; i < 10_000; i++ {
		o := NeighborOffset(r)
		if o < -3 || o > 2 {
			t.Fatalf("offset %d out of range", o)
		}
		counts[o]++
	}
	// Offset 0 (three successes) is the mode.
	if counts[0] < counts[-2] || counts[0] < counts[2] {
		t.Fatalf("offset distribution not centred: %v", counts)
	}
}

func TestClampPartition(t *testing.T) {
	if clampPartition(-1, 10) != 9 {
		t.Error("negative wrap broken")
	}
	if clampPartition(12, 10) != 2 {
		t.Error("overflow wrap broken")
	}
	if clampPartition(5, 10) != 5 {
		t.Error("identity broken")
	}
}

func TestPutGetU64(t *testing.T) {
	buf := make([]byte, 16)
	putU64(buf, 4, 0xDEADBEEFCAFE)
	if getU64(buf, 4) != 0xDEADBEEFCAFE {
		t.Fatal("u64 round trip failed")
	}
}

func TestYCSBLoadAndPartitioning(t *testing.T) {
	w := NewYCSB(YCSBConfig{Keys: 1000, PartitionSize: 100})
	rows := w.LoadRows()
	if len(rows) != 1000 {
		t.Fatalf("LoadRows = %d", len(rows))
	}
	p := w.Partitioner()
	if p(storage.RowRef{Table: YCSBTable, Key: 250}) != 2 {
		t.Fatal("partitioner wrong")
	}
	if w.Partitions() != 10 {
		t.Fatalf("Partitions = %d", w.Partitions())
	}
	place := w.Placement(2)
	// Blocks of PlacementBlock partitions round-robin across sites.
	if place(0) != 0 || place(PlacementBlock) != 1 || place(2*PlacementBlock) != 0 {
		t.Fatalf("placement: %d %d %d", place(0), place(PlacementBlock), place(2*PlacementBlock))
	}
	// Every partition maps to a valid site.
	for part := uint64(0); part < 100; part++ {
		if s := place(part); s < 0 || s >= 2 {
			t.Fatalf("partition %d -> site %d", part, s)
		}
	}
}

func TestYCSBGeneratorShapes(t *testing.T) {
	w := NewYCSB(YCSBConfig{Keys: 10_000, RMWPercent: 50})
	g := w.NewGenerator(1, 42)
	rmw, scan := 0, 0
	for i := 0; i < 2000; i++ {
		txn := g.Next()
		switch txn.Kind {
		case "rmw":
			rmw++
			if !txn.Update || len(txn.WriteSet) != 3 {
				t.Fatalf("rmw txn shape: update=%v ws=%d", txn.Update, len(txn.WriteSet))
			}
			for _, ref := range txn.WriteSet {
				if ref.Key >= 10_000 {
					t.Fatalf("rmw key %d out of range", ref.Key)
				}
			}
		case "scan":
			scan++
			if txn.Update || len(txn.WriteSet) != 0 {
				t.Fatalf("scan txn shape: %+v", txn)
			}
		default:
			t.Fatalf("unknown kind %q", txn.Kind)
		}
	}
	if rmw < 800 || rmw > 1200 {
		t.Fatalf("rmw share %d/2000 off target", rmw)
	}
	_ = scan
}

func TestYCSBRMWNeighborLocality(t *testing.T) {
	w := NewYCSB(YCSBConfig{Keys: 100_000})
	g := w.NewGenerator(3, 99).(*ycsbGen)
	part := w.Partitioner()
	for i := 0; i < 500; i++ {
		txn := g.rmw()
		base := part(txn.WriteSet[0])
		for _, ref := range txn.WriteSet[1:] {
			p := part(ref)
			d := int64(p) - int64(base)
			// Offsets wrap at the partition-space edges.
			if d > 3 && d < int64(w.Partitions())-3 {
				t.Fatalf("neighbor partition %d too far from base %d", p, base)
			}
		}
	}
}

func TestYCSBShuffledChangesCorrelations(t *testing.T) {
	plain := NewYCSB(YCSBConfig{Keys: 100_000})
	shuf := NewYCSB(YCSBConfig{Keys: 100_000, Shuffled: true, ShuffleSeed: 5})
	identical := 0
	for i := range plain.perm {
		if plain.perm[i] != shuf.perm[i] {
			break
		}
		identical++
	}
	if identical == len(plain.perm) {
		t.Fatal("shuffle had no effect")
	}
	// The shuffled workload's rmw write sets are usually not contiguous.
	g := shuf.NewGenerator(0, 1).(*ycsbGen)
	spread := 0
	for i := 0; i < 200; i++ {
		txn := g.rmw()
		p0 := txn.WriteSet[0].Key / 100
		for _, ref := range txn.WriteSet[1:] {
			p := ref.Key / 100
			d := int64(p) - int64(p0)
			if d < -3 || d > 3 {
				spread++
			}
		}
	}
	if spread == 0 {
		t.Fatal("shuffled correlations still contiguous")
	}
}

func TestTPCCLoadShapes(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 2, Districts: 2, CustomersPerD: 10, Items: 50, InitialOrders: 3})
	rows := w.LoadRows()
	counts := map[string]int{}
	for _, r := range rows {
		counts[r.Ref.Table]++
	}
	if counts[TableWarehouse] != 2 || counts[TableDistrict] != 4 ||
		counts[TableCustomer] != 40 || counts[TableItem] != 50 ||
		counts[TableStock] != 100 || counts[TableOrder] != 12 {
		t.Fatalf("row counts: %v", counts)
	}
	if counts[TableOrderLine] < 12*5 {
		t.Fatalf("too few order lines: %d", counts[TableOrderLine])
	}
}

func TestTPCCPartitionerByWarehouse(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 4, Districts: 10, CustomersPerD: 100, Items: 2000})
	p := w.Partitioner()
	// Every row's partition group belongs to its warehouse's stride.
	cases := []struct {
		ref storage.RowRef
		wh  uint64
	}{
		{storage.RowRef{Table: TableWarehouse, Key: 3}, 3},
		{storage.RowRef{Table: TableDistrict, Key: w.dKey(2, 7)}, 2},
		{storage.RowRef{Table: TableCustomer, Key: w.cKey(1, 9, 99)}, 1},
		{storage.RowRef{Table: TableStock, Key: w.sKey(3, 1999)}, 3},
		{storage.RowRef{Table: TableOrder, Key: w.oKey(2, 3, 1234)}, 2},
		{storage.RowRef{Table: TableOrderLine, Key: w.olKey(w.oKey(1, 0, 7), 15)}, 1},
		{storage.RowRef{Table: TableNewOrder, Key: w.oKey(3, 9, 42)}, 3},
		{storage.RowRef{Table: TableHistory, Key: w.hKey(2, 3, 12345)}, 2},
	}
	for _, c := range cases {
		if got := p(c.ref) / whPartStride; got != c.wh {
			t.Errorf("%s/%d -> warehouse %d, want %d", c.ref.Table, c.ref.Key, got, c.wh)
		}
	}
	// A district's customer/order/orderline rows share its partition group.
	dpart := p(storage.RowRef{Table: TableDistrict, Key: w.dKey(2, 7)})
	if p(storage.RowRef{Table: TableCustomer, Key: w.cKey(2, 7, 5)}) != dpart {
		t.Error("customer not grouped with its district")
	}
	if p(storage.RowRef{Table: TableOrder, Key: w.oKey(2, 7, 99)}) != dpart {
		t.Error("order not grouped with its district")
	}
	if p(storage.RowRef{Table: TableOrderLine, Key: w.olKey(w.oKey(2, 7, 99), 3)}) != dpart {
		t.Error("order line not grouped with its district")
	}
	// Stock groups are distinct from district groups.
	if p(storage.RowRef{Table: TableStock, Key: w.sKey(2, 0)}) == dpart {
		t.Error("stock grouped with a district")
	}
	// The static placement maps every group of a warehouse to one site.
	place := w.Placement(3)
	for sub := uint64(0); sub < whPartStride; sub++ {
		if place(2*whPartStride+sub) != place(2*whPartStride) {
			t.Fatal("placement splits a warehouse")
		}
	}
	// Item rows live in their own partition space.
	if got := p(storage.RowRef{Table: TableItem, Key: 5}); got < itemPartition {
		t.Errorf("item partition %d not in item space", got)
	}
}

func TestTPCCNewOrderWriteSetSpansSupplyWarehouses(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 4, CrossNewOrderPct: 100})
	g := w.NewGenerator(0, 7).(*tpccGen)
	p := w.Partitioner()
	cross := 0
	for i := 0; i < 50; i++ {
		txn := g.newOrder()
		whs := map[uint64]bool{}
		for _, ref := range txn.WriteSet {
			whs[p(ref)/whPartStride] = true
		}
		if len(whs) > 1 {
			cross++
		}
	}
	if cross != 50 {
		t.Fatalf("cross-warehouse New-Orders = %d/50 at 100%%", cross)
	}

	w2 := NewTPCC(TPCCConfig{Warehouses: 4, CrossNewOrderPct: -1}) // negative -> never
	g2 := w2.NewGenerator(0, 7).(*tpccGen)
	for i := 0; i < 50; i++ {
		txn := g2.newOrder()
		whs := map[uint64]bool{}
		for _, ref := range txn.WriteSet {
			whs[p(ref)/whPartStride] = true
		}
		if len(whs) != 1 {
			t.Fatal("0% cross still produced a multi-warehouse write set")
		}
	}
}

func TestTPCCOrderIDsUnique(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 1, Districts: 1})
	g := w.NewGenerator(0, 1).(*tpccGen)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		txn := g.newOrder()
		var okey uint64
		for _, ref := range txn.WriteSet {
			if ref.Table == TableOrder {
				okey = ref.Key
			}
		}
		if seen[okey] {
			t.Fatalf("duplicate order key %d", okey)
		}
		seen[okey] = true
	}
}

func TestTPCCMix(t *testing.T) {
	w := NewTPCC(TPCCConfig{NewOrderPercent: 45, PaymentPercent: 45})
	g := w.NewGenerator(0, 11)
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		counts[g.Next().Kind]++
	}
	if counts["neworder"] < 800 || counts["payment"] < 800 || counts["stocklevel"] < 100 {
		t.Fatalf("mix = %v", counts)
	}
}

func TestSmallBankShapes(t *testing.T) {
	w := NewSmallBank(SmallBankConfig{Customers: 1000})
	if len(w.LoadRows()) != 2000 {
		t.Fatal("wrong row count")
	}
	g := w.NewGenerator(0, 3)
	counts := map[string]int{}
	for i := 0; i < 2000; i++ {
		txn := g.Next()
		counts[txn.Kind]++
		switch txn.Kind {
		case "single-update":
			if len(txn.WriteSet) != 1 || !txn.Update {
				t.Fatalf("single-update shape: %+v", txn.WriteSet)
			}
		case "multi-update":
			if len(txn.WriteSet) != 2 || !txn.Update {
				t.Fatalf("multi-update shape: %+v", txn.WriteSet)
			}
			if txn.WriteSet[0] == txn.WriteSet[1] {
				t.Fatal("self transfer")
			}
		case "balance":
			if txn.Update || len(txn.WriteSet) != 0 {
				t.Fatal("balance not read-only")
			}
		}
	}
	if counts["single-update"] < 750 || counts["multi-update"] < 650 || counts["balance"] < 200 {
		t.Fatalf("mix: %v", counts)
	}
}

func TestSmallBankHotspot(t *testing.T) {
	w := NewSmallBank(SmallBankConfig{Customers: 10_000, Hotspot: 10})
	g := w.NewGenerator(0, 5).(*smallBankGen)
	hot := 0
	for i := 0; i < 1000; i++ {
		if g.customer() < 10 {
			hot++
		}
	}
	if hot < 800 {
		t.Fatalf("hotspot draws = %d/1000", hot)
	}
}

// fakeTx runs workload logic against an in-memory map for validation.
type fakeTx struct {
	data   map[storage.RowRef][]byte
	writes map[storage.RowRef][]byte
}

func newFakeTx(rows []systems.LoadRow) *fakeTx {
	t := &fakeTx{data: map[storage.RowRef][]byte{}, writes: map[storage.RowRef][]byte{}}
	for _, r := range rows {
		t.data[r.Ref] = r.Data
	}
	return t
}

func (t *fakeTx) Read(ref storage.RowRef) ([]byte, bool) {
	if w, ok := t.writes[ref]; ok {
		return w, true
	}
	d, ok := t.data[ref]
	return d, ok
}

func (t *fakeTx) Scan(table string, lo, hi uint64) []storage.KV {
	var out []storage.KV
	for ref, d := range t.data {
		if ref.Table == table && ref.Key >= lo && ref.Key < hi {
			out = append(out, storage.KV{Key: ref.Key, Value: d})
		}
	}
	return out
}

func (t *fakeTx) Write(ref storage.RowRef, data []byte) error {
	t.writes[ref] = data
	return nil
}

func TestTPCCTransactionsRunAgainstModel(t *testing.T) {
	w := NewTPCC(TPCCConfig{Warehouses: 2, Districts: 2, CustomersPerD: 10, Items: 100, InitialOrders: 5})
	rows := w.LoadRows()
	g := w.NewGenerator(0, 17)
	for i := 0; i < 200; i++ {
		txn := g.Next()
		tx := newFakeTx(rows)
		if err := txn.Run(tx); err != nil {
			t.Fatalf("txn %d (%s): %v", i, txn.Kind, err)
		}
		if txn.Update {
			// Every write must be inside the declared write set.
			declared := map[storage.RowRef]bool{}
			for _, ref := range txn.WriteSet {
				declared[ref] = true
			}
			for ref := range tx.writes {
				if !declared[ref] {
					t.Fatalf("txn %d (%s) wrote undeclared %v", i, txn.Kind, ref)
				}
			}
			if len(tx.writes) == 0 {
				t.Fatalf("txn %d (%s) declared updates but wrote nothing", i, txn.Kind)
			}
		}
	}
}

func TestYCSBAndSmallBankRunAgainstModel(t *testing.T) {
	for _, w := range []Workload{
		NewYCSB(YCSBConfig{Keys: 2000}),
		NewSmallBank(SmallBankConfig{Customers: 500}),
	} {
		rows := w.LoadRows()
		g := w.NewGenerator(1, 23)
		for i := 0; i < 200; i++ {
			txn := g.Next()
			tx := newFakeTx(rows)
			if err := txn.Run(tx); err != nil {
				t.Fatalf("%s txn %d (%s): %v", w.Name(), i, txn.Kind, err)
			}
		}
	}
}

func TestWorkloadNames(t *testing.T) {
	if NewYCSB(YCSBConfig{RMWPercent: 90}).Name() != "ycsb-90-10-uniform" {
		t.Error("ycsb name")
	}
	if NewYCSB(YCSBConfig{Zipfian: true}).Name() != "ycsb-50-50-zipfian" {
		t.Error("ycsb zipf name")
	}
	if NewTPCC(TPCCConfig{}).Name() != "tpcc-45-45-10" {
		t.Error("tpcc name")
	}
	if NewSmallBank(SmallBankConfig{}).Name() != "smallbank" {
		t.Error("smallbank name")
	}
}
