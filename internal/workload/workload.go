// Package workload implements the paper's three benchmark workloads — the
// access-correlated YCSB variant of Appendix C, TPC-C (New-Order, Payment,
// Stock-Level), and SmallBank — as system-agnostic transaction generators
// that drive any systems.System.
package workload

import (
	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// Txn is one generated transaction: a declared write set (empty for
// read-only transactions) plus the stored procedure to execute.
type Txn struct {
	// Kind labels the transaction class for per-class latency reporting
	// (e.g. "rmw", "scan", "neworder", "payment", "stocklevel").
	Kind string
	// Update reports whether the transaction writes.
	Update bool
	// WriteSet is the declared write set (the system model assumes write
	// sets are known at submission, via reconnaissance if necessary).
	WriteSet []storage.RowRef
	// ReadHint names representative rows a read-only transaction will
	// access, so partitioned systems can route it to the data's owner.
	ReadHint []storage.RowRef
	// Run is the transaction logic.
	Run func(tx systems.Tx) error
}

// Generator produces a client's transaction stream. Generators are used by
// one goroutine at a time.
type Generator interface {
	Next() Txn
}

// Workload describes a benchmark: schema, initial data, partitioning, the
// oracle static placement for the partitioned baselines, and per-client
// generators.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// Tables lists the tables to create.
	Tables() []string
	// LoadRows produces the initial data set.
	LoadRows() []systems.LoadRow
	// Partitioner maps rows to partitions; shared by every system.
	Partitioner() sitemgr.Partitioner
	// Placement returns the oracle static placement over m sites (range
	// partitioning for YCSB, warehouse partitioning for TPC-C), used by
	// the partitioned baselines.
	Placement(m int) func(part uint64) int
	// ReplicatedTables lists static read-only tables that partitioned
	// systems replicate everywhere.
	ReplicatedTables() map[string]bool
	// NewGenerator returns client's transaction stream with the given
	// seed.
	NewGenerator(client int, seed int64) Generator
}

// Execute runs one generated transaction against a client session.
func Execute(cl systems.Client, t Txn) error {
	if t.Update {
		return cl.Update(t.WriteSet, t.Run)
	}
	return cl.Read(t.ReadHint, t.Run)
}

// putU64 encodes v into an 8-byte big-endian slice at data[off:].
func putU64(data []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		data[off+i] = byte(v >> (56 - 8*i))
	}
}

// getU64 decodes an 8-byte big-endian value at data[off:].
func getU64(data []byte, off int) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(data[off+i])
	}
	return v
}
