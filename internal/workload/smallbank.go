package workload

import (
	"fmt"
	"math/rand"

	"dynamast/internal/sitemgr"
	"dynamast/internal/storage"
	"dynamast/internal/systems"
)

// SmallBank table names: each customer has a checking and a savings row.
const (
	TableChecking = "checking"
	TableSavings  = "savings"
)

// SmallBankConfig parameterizes the banking workload used to stress short
// transactions (Appendix F): 45% single-row updates, 40% two-row updates
// (SendPayment), 15% two-row read-only Balance.
type SmallBankConfig struct {
	// Customers is the account count (default 20_000).
	Customers uint64
	// PartitionSize groups customers into partitions (default 100).
	PartitionSize uint64
	// SinglePercent / MultiPercent set the update mix; the remainder is
	// Balance. Defaults 45/40.
	SinglePercent int
	MultiPercent  int
	// Hotspot, if nonzero, draws customers from the first Hotspot
	// accounts with 90% probability (contention studies).
	Hotspot uint64
}

func (c SmallBankConfig) withDefaults() SmallBankConfig {
	if c.Customers == 0 {
		c.Customers = 20_000
	}
	if c.PartitionSize == 0 {
		c.PartitionSize = 100
	}
	if c.SinglePercent == 0 && c.MultiPercent == 0 {
		c.SinglePercent, c.MultiPercent = 45, 40
	}
	return c
}

// SmallBank implements Workload.
type SmallBank struct {
	cfg   SmallBankConfig
	parts uint64
}

// NewSmallBank builds the workload.
func NewSmallBank(cfg SmallBankConfig) *SmallBank {
	cfg = cfg.withDefaults()
	return &SmallBank{cfg: cfg, parts: cfg.Customers / cfg.PartitionSize}
}

// Name implements Workload.
func (w *SmallBank) Name() string { return "smallbank" }

// Tables implements Workload.
func (w *SmallBank) Tables() []string { return []string{TableChecking, TableSavings} }

// LoadRows implements Workload.
func (w *SmallBank) LoadRows() []systems.LoadRow {
	rows := make([]systems.LoadRow, 0, 2*w.cfg.Customers)
	for c := uint64(0); c < w.cfg.Customers; c++ {
		bal := make([]byte, 8)
		putU64(bal, 0, 10_000)
		rows = append(rows,
			systems.LoadRow{Ref: storage.RowRef{Table: TableChecking, Key: c}, Data: bal},
			systems.LoadRow{Ref: storage.RowRef{Table: TableSavings, Key: c}, Data: bal},
		)
	}
	return rows
}

// Partitioner implements Workload: a customer's checking and savings rows
// share a partition of PartitionSize contiguous customers.
func (w *SmallBank) Partitioner() sitemgr.Partitioner {
	size := w.cfg.PartitionSize
	return func(ref storage.RowRef) uint64 { return ref.Key / size }
}

// Placement implements Workload: blocks of ten customer partitions
// round-robin across sites (SendPayment pairs accounts uniformly, so any
// balanced placement leaves the same cross-site fraction).
func (w *SmallBank) Placement(m int) func(part uint64) int {
	return func(part uint64) int {
		return int(part/10) % m
	}
}

// ReplicatedTables implements Workload.
func (w *SmallBank) ReplicatedTables() map[string]bool { return nil }

type smallBankGen struct {
	w *SmallBank
	r *rand.Rand
}

// NewGenerator implements Workload.
func (w *SmallBank) NewGenerator(client int, seed int64) Generator {
	return &smallBankGen{w: w, r: rand.New(rand.NewSource(seed ^ int64(client)*0x5851F42D4C957F2D))}
}

// customer draws an account id, respecting the hotspot if configured.
func (g *smallBankGen) customer() uint64 {
	cfg := g.w.cfg
	if cfg.Hotspot > 0 && g.r.Intn(100) < 90 {
		return uint64(g.r.Intn(int(cfg.Hotspot)))
	}
	return uint64(g.r.Intn(int(cfg.Customers)))
}

// Next implements Generator.
func (g *smallBankGen) Next() Txn {
	p := g.r.Intn(100)
	switch {
	case p < g.w.cfg.SinglePercent:
		return g.depositChecking()
	case p < g.w.cfg.SinglePercent+g.w.cfg.MultiPercent:
		return g.sendPayment()
	default:
		return g.balance()
	}
}

// depositChecking is the single-row update class: add money to a
// customer's checking account.
func (g *smallBankGen) depositChecking() Txn {
	c := g.customer()
	amount := uint64(1 + g.r.Intn(100))
	ref := storage.RowRef{Table: TableChecking, Key: c}
	return Txn{
		Kind:     "single-update",
		Update:   true,
		WriteSet: []storage.RowRef{ref},
		Run: func(tx systems.Tx) error {
			row, ok := tx.Read(ref)
			if !ok {
				return fmt.Errorf("smallbank: account %d missing", c)
			}
			out := make([]byte, 8)
			putU64(out, 0, getU64(row, 0)+amount)
			return tx.Write(ref, out)
		},
	}
}

// sendPayment is the two-row update class: atomically transfer between two
// customers' checking accounts (usually in different partitions).
func (g *smallBankGen) sendPayment() Txn {
	src := g.customer()
	dst := g.customer()
	for dst == src {
		dst = g.customer()
	}
	amount := uint64(1 + g.r.Intn(50))
	srcRef := storage.RowRef{Table: TableChecking, Key: src}
	dstRef := storage.RowRef{Table: TableChecking, Key: dst}
	return Txn{
		Kind:     "multi-update",
		Update:   true,
		WriteSet: []storage.RowRef{srcRef, dstRef},
		Run: func(tx systems.Tx) error {
			srow, ok := tx.Read(srcRef)
			if !ok {
				return fmt.Errorf("smallbank: account %d missing", src)
			}
			drow, ok := tx.Read(dstRef)
			if !ok {
				return fmt.Errorf("smallbank: account %d missing", dst)
			}
			sbal := getU64(srow, 0)
			if sbal < amount {
				amount = sbal // insufficient funds: transfer what's there
			}
			sout := make([]byte, 8)
			putU64(sout, 0, sbal-amount)
			if err := tx.Write(srcRef, sout); err != nil {
				return err
			}
			dout := make([]byte, 8)
			putU64(dout, 0, getU64(drow, 0)+amount)
			return tx.Write(dstRef, dout)
		},
	}
}

// balance is the read-only class: the sum of a customer's checking and
// savings rows.
func (g *smallBankGen) balance() Txn {
	c := g.customer()
	return Txn{
		Kind:     "balance",
		ReadHint: []storage.RowRef{{Table: TableChecking, Key: c}},
		Run: func(tx systems.Tx) error {
			crow, ok := tx.Read(storage.RowRef{Table: TableChecking, Key: c})
			if !ok {
				return fmt.Errorf("smallbank: checking %d missing", c)
			}
			srow, ok := tx.Read(storage.RowRef{Table: TableSavings, Key: c})
			if !ok {
				return fmt.Errorf("smallbank: savings %d missing", c)
			}
			_ = getU64(crow, 0) + getU64(srow, 0)
			return nil
		},
	}
}
