package dynamast_test

import (
	"testing"

	"dynamast"
)

func TestPartitionByRange(t *testing.T) {
	p := dynamast.PartitionByRange(100)
	if p(dynamast.RowRef{Table: "t", Key: 0}) != 0 ||
		p(dynamast.RowRef{Table: "t", Key: 99}) != 0 ||
		p(dynamast.RowRef{Table: "t", Key: 100}) != 1 {
		t.Fatal("PartitionByRange boundaries wrong")
	}
	// Table-agnostic: only the key decides.
	if p(dynamast.RowRef{Table: "a", Key: 250}) != p(dynamast.RowRef{Table: "b", Key: 250}) {
		t.Fatal("PartitionByRange must ignore the table")
	}
}

func TestWeightHelpers(t *testing.T) {
	if dynamast.YCSBWeights().Balance != 1e6 {
		t.Fatal("YCSBWeights")
	}
	if dynamast.TPCCWeights().IntraTxn != 0.88 {
		t.Fatal("TPCCWeights")
	}
	if dynamast.SmallBankWeights().IntraTxn != 3 {
		t.Fatal("SmallBankWeights")
	}
}

func TestDefaultHelpers(t *testing.T) {
	if dynamast.DefaultNetwork().OneWay <= 0 {
		t.Fatal("DefaultNetwork has no latency")
	}
	if dynamast.DefaultCosts().TxnBase <= 0 {
		t.Fatal("DefaultCosts has no base cost")
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := dynamast.New(dynamast.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
